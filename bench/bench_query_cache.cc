// What does the query cache buy — and what does it cost when it can't
// help? Four engine-level variants of the university mix (2 universities):
//
//   BM_MixUncached        no cache attached — the pre-cache Engine::Query
//                         path, byte for byte. The cold baseline.
//   BM_MixWarmCache       cache attached and pre-warmed: every query in
//                         the timing loop is a result-cache hit (hash the
//                         canonical text, one sharded-LRU lookup, copy the
//                         materialized MappingSet).
//   BM_MixCacheBypass     cache attached but every query opts out with
//                         CacheMode::kOff — measures the bypass check
//                         itself, the only cost a caller who disables
//                         caching per query ever pays.
//   BM_UniqueAdversarial  cache attached, every query text unique — the
//                         worst case: each evaluation pays hash + lookup
//                         miss + store and the LRU churns, with zero hits.
//
// Before google-benchmark runs, a paired pre-pass interleaves the cold,
// warm, and bypass sweeps (41 reps of 5 mix passes each, medians of
// per-rep ratios, up to 3 attempts) and enforces the two budgets from
// docs/performance.md:
//
//   gate A: warm >= 10x faster than cold on the repeat-heavy mix,
//   gate B: bypass within 2% of cold (caching disabled is ~free).
//
// Both gates print to stderr; a violation fails the binary (and hence the
// bench_query_cache_emit ctest) AFTER the JSON is written, so a failing
// run still leaves numbers to debug. The per-mode sweep medians land in the
// JSON as `paired_*_ns` metrics (timing-named, so bench_diff skips them
// across machines). A separate deterministic pre-pass drives fixed
// workloads through fresh caches and attaches the resulting hit/miss/
// eviction counts as `sweep_*` metrics — exact-match material for the
// committed baseline (FNV-1a and the shard mix are fixed-width integer
// arithmetic, so the counts are machine-independent).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/rdfql.h"
#include "util/check.h"
#include "workload/university_generator.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

Engine& SharedEngine() {
  static Engine engine;
  return engine;
}

void EnsureMixGraph() {
  static bool registered = [] {
    UniversitySpec spec;
    // 4 universities (vs the 2 of bench_limits_overhead): long enough cold
    // sweeps that the paired gates measure the cache, not timer noise.
    spec.num_universities = 4;
    SharedEngine().PutGraph(
        "mix", GenerateUniversityGraph(spec, SharedEngine().dict()));
    return true;
  }();
  (void)registered;
}

size_t RunMix(const EvalOptions& options = EvalOptions{}) {
  size_t answers = 0;
  for (const NamedUniversityQuery& q : UniversityQueryMix()) {
    Result<MappingSet> r = SharedEngine().Query("mix", q.text, options);
    RDFQL_CHECK(r.ok());
    answers += r->size();
  }
  return answers;
}

EvalOptions BypassOptions() {
  EvalOptions options;
  options.use_plan_cache = CacheMode::kOff;
  options.use_result_cache = CacheMode::kOff;
  return options;
}

QueryCache& SharedCache() {
  static QueryCache cache{QueryCacheOptions{}};
  return cache;
}

void BM_MixUncached(benchmark::State& state) {
  EnsureMixGraph();
  SharedEngine().SetQueryCache(nullptr);
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMix();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixUncached)->Unit(benchmark::kMillisecond);

void BM_MixWarmCache(benchmark::State& state) {
  EnsureMixGraph();
  SharedEngine().SetQueryCache(&SharedCache());
  RunMix();  // warm: every loop iteration below is a result hit
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMix();
    benchmark::DoNotOptimize(answers);
  }
  SharedEngine().SetQueryCache(nullptr);
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixWarmCache)->Unit(benchmark::kMillisecond);

void BM_MixCacheBypass(benchmark::State& state) {
  EnsureMixGraph();
  SharedEngine().SetQueryCache(&SharedCache());
  EvalOptions off = BypassOptions();
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMix(off);
    benchmark::DoNotOptimize(answers);
  }
  SharedEngine().SetQueryCache(nullptr);
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixCacheBypass)->Unit(benchmark::kMillisecond);

void BM_UniqueAdversarial(benchmark::State& state) {
  EnsureMixGraph();
  SharedEngine().SetQueryCache(&SharedCache());
  // A process-lifetime counter keeps every query text distinct across
  // iterations AND benchmark re-runs: all misses, maximal churn.
  static uint64_t serial = 0;
  size_t answers = 0;
  for (auto _ : state) {
    std::string q =
        "(?s adversarial_never_hits" + std::to_string(serial++) + " ?o)";
    Result<MappingSet> r = SharedEngine().Query("mix", q);
    RDFQL_CHECK(r.ok());
    answers = r->size();
    benchmark::DoNotOptimize(answers);
  }
  SharedEngine().SetQueryCache(nullptr);
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_UniqueAdversarial)->Unit(benchmark::kMillisecond);

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

template <typename T>
T Median(std::vector<T> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// One paired measurement pass. The bypass budget (2%) is tighter than a
/// shared machine's sweep-to-sweep noise, so several defenses stack:
///
///  - each timed sweep runs the mix kMixPerSweep times (~25ms), long
///    enough to average over millisecond-scale preemption spikes;
///  - cold and bypass run back to back with their order alternating every
///    rep (identical allocator state — the warm sweep's alloc/free of
///    result copies runs last — and slow drift in clock frequency or
///    background load hits both modes equally often);
///  - the gates compare medians of per-rep ratios rather than ratios of
///    aggregates, so one preempted sweep shifts one sample, not the
///    verdict.
///
/// Fills the medians out and returns 0 when both budgets hold.
int RunPairedAttempt(QueryCache* cache, const EvalOptions& off, double* out_cold,
                     double* out_warm, double* out_bypass) {
  constexpr int kReps = 41;
  constexpr int kMixPerSweep = 5;
  std::vector<uint64_t> cold_ns, warm_ns, bypass_ns;
  std::vector<double> speedups, overheads;
  for (int i = 0; i < kReps; ++i) {
    uint64_t cold = 0, bypass = 0;
    size_t a = 0, c = 0;
    auto run_cold = [&] {
      SharedEngine().SetQueryCache(nullptr);
      uint64_t t0 = NowNs();
      for (int k = 0; k < kMixPerSweep; ++k) a = RunMix();
      cold = NowNs() - t0;
    };
    auto run_bypass = [&] {
      SharedEngine().SetQueryCache(cache);
      uint64_t t0 = NowNs();
      for (int k = 0; k < kMixPerSweep; ++k) c = RunMix(off);
      bypass = NowNs() - t0;
    };
    if (i % 2 == 0) {
      run_cold();
      run_bypass();
    } else {
      run_bypass();
      run_cold();
    }
    SharedEngine().SetQueryCache(cache);
    uint64_t t0 = NowNs();
    size_t b = 0;
    for (int k = 0; k < kMixPerSweep; ++k) b = RunMix();
    uint64_t warm = NowNs() - t0;
    SharedEngine().SetQueryCache(nullptr);
    RDFQL_CHECK(a == b && b == c);
    cold_ns.push_back(cold);
    bypass_ns.push_back(bypass);
    warm_ns.push_back(warm);
    speedups.push_back(static_cast<double>(cold) /
                       static_cast<double>(warm));
    overheads.push_back(static_cast<double>(bypass) /
                            static_cast<double>(cold) -
                        1.0);
  }
  *out_cold = static_cast<double>(Median(cold_ns)) / kMixPerSweep;
  *out_warm = static_cast<double>(Median(warm_ns)) / kMixPerSweep;
  *out_bypass = static_cast<double>(Median(bypass_ns)) / kMixPerSweep;
  double speedup = Median(speedups);
  double overhead = Median(overheads);
  std::fprintf(stderr,
               "query-cache (paired medians over %d x%d mix sweeps): "
               "cold=%.2fms warm=%.3fms (%.1fx) bypass=%.2fms (%+.2f%%); "
               "budgets: warm >=10x, bypass <2%%\n",
               kReps, kMixPerSweep, *out_cold / 1e6, *out_warm / 1e6, speedup,
               *out_bypass / 1e6, overhead * 100);
  int rc = 0;
  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "query-cache gate miss: warm speedup %.1fx < 10x\n",
                 speedup);
    rc = 1;
  }
  if (overhead > 0.02) {
    std::fprintf(stderr,
                 "query-cache gate miss: bypass overhead %+.2f%% > 2%%\n",
                 overhead * 100);
    rc = 1;
  }
  return rc;
}

/// Paired pre-pass: interleave cold (no cache), warm (pre-warmed cache),
/// and bypass (cache attached, per-query kOff) sweeps so they share the
/// same frequency/cache-pressure conditions, and gate on the medians of
/// per-rep ratios. A gate miss re-runs the whole pass (up to 3 attempts):
/// on a loaded single-core host the median estimator's noise floor is
/// ~±1%, so a true-zero overhead occasionally measures past 2% — but a
/// real regression fails every attempt, while three independent false
/// positives are vanishingly unlikely. Returns 0 when some attempt holds
/// both budgets, 1 otherwise.
int ReportPairedCacheGates() {
  EnsureMixGraph();
  QueryCache cache{QueryCacheOptions{}};
  EvalOptions off = BypassOptions();
  // Warm up graph indexes/allocator, then warm the cache itself.
  SharedEngine().SetQueryCache(nullptr);
  RunMix();
  SharedEngine().SetQueryCache(&cache);
  RunMix();
  constexpr int kAttempts = 3;
  double cold = 0, warm = 0, bypass = 0;
  int rc = 1;
  for (int attempt = 1; attempt <= kAttempts && rc != 0; ++attempt) {
    if (attempt > 1) {
      std::fprintf(stderr, "query-cache: retrying paired pass (%d/%d)\n",
                   attempt, kAttempts);
    }
    rc = RunPairedAttempt(&cache, off, &cold, &warm, &bypass);
  }
  for (const char* name :
       {"BM_MixUncached", "BM_MixWarmCache", "BM_MixCacheBypass"}) {
    bench::AddCaseMetric(name, "paired_cold_ns", cold);
    bench::AddCaseMetric(name, "paired_warm_ns", warm);
    bench::AddCaseMetric(name, "paired_bypass_ns", bypass);
  }
  if (rc != 0) {
    std::fprintf(stderr,
                 "query-cache GATE FAILURE: budgets missed on all %d "
                 "attempts\n",
                 kAttempts);
  }
  return rc;
}

/// Deterministic sweeps through fresh caches; the resulting counters are
/// pure functions of the workload (no timing, no sizes), so the committed
/// baseline pins them exactly.
void ReportDeterministicCacheCounters() {
  EnsureMixGraph();
  // Repeat-heavy: the 6-query mix, 10 sweeps. Sweep 1 misses and stores;
  // sweeps 2-10 are result hits (the plan is never even consulted again).
  {
    QueryCache cache{QueryCacheOptions{}};
    SharedEngine().SetQueryCache(&cache);
    for (int rep = 0; rep < 10; ++rep) RunMix();
    SharedEngine().SetQueryCache(nullptr);
    QueryCacheStats s = cache.Stats();
    bench::AddCaseMetric("BM_MixWarmCache", "sweep_plan_misses",
                         static_cast<double>(s.plan_misses));
    bench::AddCaseMetric("BM_MixWarmCache", "sweep_result_hits",
                         static_cast<double>(s.result_hits));
    bench::AddCaseMetric("BM_MixWarmCache", "sweep_result_misses",
                         static_cast<double>(s.result_misses));
    bench::AddCaseMetric("BM_MixWarmCache", "sweep_result_evictions",
                         static_cast<double>(s.result_evictions));
  }
  // All-unique churn: 512 distinct queries through a 256-entry plan cache
  // (results off — their byte sizes are sizeof-dependent, plan counts are
  // not). Evictions/retained entries depend only on how the FNV hashes
  // land across the 16 shards: fixed integer arithmetic, so exact-match
  // baseline material.
  {
    QueryCacheOptions options;
    options.plan_capacity = 256;
    options.result_max_bytes = 0;
    QueryCache cache(options);
    SharedEngine().SetQueryCache(&cache);
    for (int i = 0; i < 512; ++i) {
      std::string q = "(?s sweep_unique" + std::to_string(i) + " ?o)";
      RDFQL_CHECK(SharedEngine().Query("mix", q).ok());
    }
    SharedEngine().SetQueryCache(nullptr);
    QueryCacheStats s = cache.Stats();
    bench::AddCaseMetric("BM_UniqueAdversarial", "sweep_plan_hits",
                         static_cast<double>(s.plan_hits));
    bench::AddCaseMetric("BM_UniqueAdversarial", "sweep_plan_misses",
                         static_cast<double>(s.plan_misses));
    bench::AddCaseMetric("BM_UniqueAdversarial", "sweep_plan_evictions",
                         static_cast<double>(s.plan_evictions));
    bench::AddCaseMetric("BM_UniqueAdversarial", "sweep_plan_entries",
                         static_cast<double>(s.plan_entries));
  }
}

}  // namespace
}  // namespace rdfql

int main(int argc, char** argv) {
  int gate_rc = rdfql::ReportPairedCacheGates();
  rdfql::ReportDeterministicCacheCounters();
  int rc = rdfql::bench::BenchMain(argc, argv, "bench_query_cache");
  return rc != 0 ? rc : gate_rc;
}
