// E7 (DESIGN.md): Theorem 5.1's NS-elimination blow-up. The proof bounds
// the translated pattern double-exponentially in the input; this bench
// prints |P| vs |Q| as the number of optional variables grows and times
// the transformation.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "transform/ns_elimination.h"
#include "util/check.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

// NS( ((base OPT t0) OPT t1) ... ): k optional variables. Lemma D.2 must
// split each disjunct over all 2^k bound/unbound domain profiles and
// Lemma D.3 then subtracts every strictly-larger profile — this is the
// family where the construction's exponential blow-up materializes.
std::string OptionalFamily(int k) {
  std::string inner = "(?x a b)";
  for (int i = 0; i < k; ++i) {
    inner = "(" + inner + " OPT (?x p" + std::to_string(i) + " ?y" +
            std::to_string(i) + "))";
  }
  return "NS(" + inner + ")";
}

void PrintBlowupTable() {
  std::printf(
      "== E7: NS-elimination size (Theorem 5.1 / Lemma D.3) ==\n"
      "k (optional vars) | input nodes | output nodes\n");
  for (int k = 1; k <= 4; ++k) {
    Engine engine;
    Result<PatternPtr> p = engine.Parse(OptionalFamily(k));
    RDFQL_CHECK(p.ok());
    NormalFormLimits limits;
    limits.max_disjuncts = 1u << 22;
    Result<PatternPtr> q = EliminateNs(p.value(), limits);
    if (!q.ok()) {
      std::printf("%17d | %11zu | (limit: %s)\n", k,
                  p.value()->SizeInNodes(), q.status().ToString().c_str());
      continue;
    }
    std::printf("%17d | %11zu | %12zu\n", k, p.value()->SizeInNodes(),
                q.value()->SizeInNodes());
  }
  std::printf("\n");
}

void BM_EliminateNs(benchmark::State& state) {
  Engine engine;
  int k = static_cast<int>(state.range(0));
  Result<PatternPtr> p = engine.Parse(OptionalFamily(k));
  RDFQL_CHECK(p.ok());
  NormalFormLimits limits;
  limits.max_disjuncts = 1u << 22;
  size_t out_nodes = 0;
  for (auto _ : state) {
    Result<PatternPtr> q = EliminateNs(p.value(), limits);
    RDFQL_CHECK(q.ok());
    out_nodes = q.value()->SizeInNodes();
    benchmark::DoNotOptimize(q);
  }
  state.counters["output_nodes"] = static_cast<double>(out_nodes);
  // One instrumented run outside the timing loop for the measured blowup
  // ratio (Theorem 5.1's bound, observed).
  PipelineReport report;
  Result<PatternPtr> q = EliminateNs(p.value(), limits, &report);
  RDFQL_CHECK(q.ok());
  const PipelineStage* stage = report.Find("ns_elimination");
  RDFQL_CHECK(stage != nullptr);
  state.counters["node_blowup"] = stage->NodeBlowup();
  bench::AddCaseMetric("BM_EliminateNs/" + std::to_string(k),
                       "ns_elimination.node_blowup", stage->NodeBlowup());
  bench::AddCaseMetric("BM_EliminateNs/" + std::to_string(k),
                       "ns_elimination.nodes_out",
                       static_cast<double>(stage->out.nodes));
}
BENCHMARK(BM_EliminateNs)->DenseRange(1, 4);

// Cost of *evaluating* the eliminated pattern vs evaluating NS directly —
// the practical price of replacing the operator by its SPARQL encoding.
void BM_EvalEliminated(benchmark::State& state) {
  Engine engine;
  int k = static_cast<int>(state.range(0));
  Result<PatternPtr> p = engine.Parse(OptionalFamily(k));
  RDFQL_CHECK(p.ok());
  Result<PatternPtr> q = EliminateNs(p.value());
  RDFQL_CHECK(q.ok());

  Graph g;
  Dictionary* d = engine.dict();
  for (int x = 0; x < 20; ++x) {
    TermId subj = d->InternIri("s" + std::to_string(x));
    g.Insert(subj, d->InternIri("a"), d->InternIri("b"));
    for (int i = 0; i < k; ++i) {
      if ((x + i) % 2 == 0) {
        g.Insert(subj, d->InternIri("p" + std::to_string(i)),
                 d->InternIri("m" + std::to_string(x * 10 + i)));
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPattern(g, q.value()));
  }
}
BENCHMARK(BM_EvalEliminated)->DenseRange(1, 3);

void BM_EvalNsDirect(benchmark::State& state) {
  Engine engine;
  int k = static_cast<int>(state.range(0));
  Result<PatternPtr> p = engine.Parse(OptionalFamily(k));
  RDFQL_CHECK(p.ok());
  Graph g;
  Dictionary* d = engine.dict();
  for (int x = 0; x < 20; ++x) {
    TermId subj = d->InternIri("s" + std::to_string(x));
    g.Insert(subj, d->InternIri("a"), d->InternIri("b"));
    for (int i = 0; i < k; ++i) {
      if ((x + i) % 2 == 0) {
        g.Insert(subj, d->InternIri("p" + std::to_string(i)),
                 d->InternIri("m" + std::to_string(x * 10 + i)));
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPattern(g, p.value()));
  }
}
BENCHMARK(BM_EvalNsDirect)->DenseRange(1, 3);

}  // namespace
}  // namespace rdfql

int main(int argc, char** argv) {
  rdfql::PrintBlowupTable();
  return rdfql::bench::BenchMain(argc, argv, "bench_ns_elimination");
}
