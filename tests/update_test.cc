#include "update/update.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "rdf/ntriples.h"
#include "util/random.h"
#include "workload/graph_generator.h"

namespace rdfql {
namespace {

class UpdateTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Graph Load(const char* text) {
    Graph g;
    Status st = ParseNTriples(text, &dict_, &g);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return g;
  }
  TriplePattern Tp(const char* s, const char* p, const char* o) {
    auto term = [this](const char* x) {
      if (x[0] == '?') return Term::Var(dict_.InternVar(x + 1));
      return Term::Iri(dict_.InternIri(x));
    };
    return TriplePattern(term(s), term(p), term(o));
  }
  Dictionary dict_;
};

TEST_F(UpdateTest, InsertAndDeleteData) {
  Graph g;
  Triple t(dict_.InternIri("a"), dict_.InternIri("p"), dict_.InternIri("b"));
  EXPECT_EQ(InsertData(&g, {t, t}), 1u);  // set semantics
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(DeleteData(&g, {t}), 1u);
  EXPECT_EQ(DeleteData(&g, {t}), 0u);
  EXPECT_TRUE(g.empty());
}

TEST_F(UpdateTest, InsertWhereMaterializesView) {
  Graph g = Load("a knows b .\nb knows c .");
  size_t added = InsertWhere(&g, {Tp("?y", "known_by", "?x")},
                             Parse("(?x knows ?y)"));
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(g.Contains(Triple(dict_.FindIri("b"),
                                dict_.FindIri("known_by"),
                                dict_.FindIri("a"))));
  // Idempotent on re-run (set semantics).
  EXPECT_EQ(InsertWhere(&g, {Tp("?y", "known_by", "?x")},
                        Parse("(?x knows ?y)")),
            0u);
}

TEST_F(UpdateTest, InsertWhereUsesSnapshotSemantics) {
  // Inserting (?y knows ?z) for every (?x knows ?y)(?y knows ?z) chain
  // must not consume its own output (no transitive-closure runaway in one
  // call).
  Graph g = Load("a knows b .\nb knows c .\nc knows d .");
  size_t added =
      InsertWhere(&g, {Tp("?x", "knows", "?z")},
                  Parse("(?x knows ?y) AND (?y knows ?z)"));
  EXPECT_EQ(added, 2u);  // a->c and b->d, but NOT a->d
  EXPECT_FALSE(g.Contains(Triple(dict_.FindIri("a"), dict_.FindIri("knows"),
                                 dict_.FindIri("d"))));
}

TEST_F(UpdateTest, DeleteWhereRemovesMatches) {
  Graph g = Load("a born chile .\na email m .\nb born chile .");
  // Forget every email of people born in Chile.
  size_t removed = DeleteWhere(
      &g, {Tp("?x", "email", "?e")},
      Parse("(?x born chile) AND (?x email ?e)"));
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(g.size(), 2u);
}

TEST_F(UpdateTest, DeleteWhereWithOptionalTemplateVars) {
  // Template triples whose variables are unbound in an answer are skipped,
  // like CONSTRUCT.
  Graph g = Load("a born chile .\na email m .\nb born chile .");
  size_t removed = DeleteWhere(
      &g, {Tp("?x", "email", "?e"), Tp("?x", "born", "chile")},
      Parse("(?x born chile) OPT (?x email ?e)"));
  // Removes both born triples and a's email.
  EXPECT_EQ(removed, 3u);
  EXPECT_TRUE(g.empty());
}

TEST_F(UpdateTest, InsertThenDeleteRoundTrip) {
  Rng rng(5);
  Graph g = GenerateRandomGraph(20, 5, &dict_, &rng, "u");
  Graph original = g;
  PatternPtr all = Parse("(?s ?p ?o)");
  std::vector<TriplePattern> mirror = {Tp("?o", "mirror", "?s")};
  size_t added = InsertWhere(&g, mirror, all);
  EXPECT_GT(added, 0u);
  // Deleting with the same template over the *mirror* pattern restores
  // the original graph.
  size_t removed = DeleteWhere(
      &g, {Tp("?o", "mirror", "?s")},
      Parse("(?o mirror ?s)"));
  EXPECT_EQ(removed, added);
  EXPECT_EQ(g, original);
}

TEST_F(UpdateTest, BindVarsPreparedQueries) {
  Graph g = Load("a p b .\nc p d .\na q x .");
  PatternPtr templ = Parse("(?s p ?o) AND (?s q ?t)");
  VarId s = dict_.FindVar("s");
  // Bind ?s := a.
  PatternPtr bound =
      Pattern::BindVars(templ, {{s, dict_.FindIri("a")}});
  // ?s no longer occurs.
  const std::vector<VarId>& vars = bound->Vars();
  EXPECT_FALSE(std::binary_search(vars.begin(), vars.end(), s));
  // Answers = projections of the original answers extending [s→a].
  MappingSet r = EvalPattern(g, bound);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Mapping::FromBindings(
      {{dict_.FindVar("o"), dict_.FindIri("b")},
       {dict_.FindVar("t"), dict_.FindIri("x")}})));
}

TEST_F(UpdateTest, BindVarsSemanticsOnRandomAufPatterns) {
  Rng rng(99);
  for (int i = 0; i < 30; ++i) {
    // Build a small AUF pattern over ?v0..?v2 and bind ?v0 to a random IRI.
    Dictionary& d = dict_;
    PatternPtr p = Parse(
        "((?v0 e" + std::to_string(i % 3) + " ?v1) UNION "
        "((?v0 e" + std::to_string(i % 2) + " ?v1) AND (?v1 f ?v2))) "
        "FILTER !(?v0 = ?v1)");
    Graph g = GenerateRandomGraph(14, 3, &d, &rng, "bv");
    TermId c = d.InternIri("bv_" + std::to_string(rng.NextBelow(3)));
    VarId v0 = d.FindVar("v0");
    PatternPtr bound = Pattern::BindVars(p, {{v0, c}});

    // Expected: answers of P extending [v0→c], with v0 dropped.
    MappingSet expected;
    for (const Mapping& m : EvalPattern(g, p)) {
      std::optional<TermId> value = m.Get(v0);
      if (value.has_value() && *value == c) {
        std::vector<VarId> rest;
        for (VarId v : p->Vars()) {
          if (v != v0) rest.push_back(v);
        }
        expected.Add(m.RestrictTo(rest));
      }
    }
    EXPECT_EQ(EvalPattern(g, bound), expected) << i;
  }
}

TEST_F(UpdateTest, BindVarsPartialFilterEvaluation) {
  VarId x = dict_.InternVar("bx");
  VarId y = dict_.InternVar("by");
  TermId c = dict_.InternIri("bc");
  PatternPtr p = Pattern::Filter(
      Pattern::MakeTriple(Term::Var(x), Term::Iri(dict_.InternIri("p")),
                          Term::Var(y)),
      Builtin::And(Builtin::Bound(x), Builtin::EqVars(x, y)));
  PatternPtr bound = Pattern::BindVars(p, {{x, c}});
  // bound(?x) folded to true; ?x = ?y became ?y = bc.
  ASSERT_EQ(bound->kind(), PatternKind::kFilter);
  EXPECT_EQ(bound->condition()->kind(), Builtin::Kind::kEqConst);
  EXPECT_EQ(bound->condition()->constant(), c);
}

}  // namespace
}  // namespace rdfql
