// Tests for the per-query resource accountant: exact counters on
// hand-computed joins, agreement across thread counts, and the epoch
// mechanism that keeps Reset() safe while old sets are still alive.

#include "obs/accounting.h"

#include <gtest/gtest.h>

#include "algebra/mapping.h"
#include "algebra/mapping_set.h"
#include "core/engine.h"
#include "eval/evaluator.h"

namespace rdfql {
namespace {

TEST(ResourceAccountantTest, RawAddRemovePeaks) {
  ResourceAccountant acct;
  acct.OnAdd(3, 300);
  acct.OnAdd(2, 200);
  EXPECT_EQ(acct.live_mappings(), 5u);
  EXPECT_EQ(acct.live_bytes(), 500u);
  EXPECT_EQ(acct.peak_mappings(), 5u);
  EXPECT_EQ(acct.peak_bytes(), 500u);
  acct.OnRemove(2, 200);
  EXPECT_EQ(acct.live_mappings(), 3u);
  EXPECT_EQ(acct.peak_mappings(), 5u);  // peaks never fall
  acct.OnAdd(1, 100);
  EXPECT_EQ(acct.peak_mappings(), 5u);  // 4 live < old peak
  EXPECT_EQ(acct.total_mappings(), 6u);
  EXPECT_EQ(acct.total_bytes(), 600u);
}

TEST(ResourceAccountantTest, MappingSetReportsExactBytes) {
  ResourceAccountant acct;
  Mapping m1;
  m1.Set(0, 1);
  Mapping m2;
  m2.Set(0, 2);
  m2.Set(1, 3);
  const uint64_t expected = m1.ApproxBytes() + m2.ApproxBytes();
  {
    ScopedAccounting install(&acct);
    MappingSet s;
    s.Add(m1);
    s.Add(m2);
    s.Add(m1);  // duplicate: rejected, must not be accounted
    EXPECT_EQ(acct.live_mappings(), 2u);
    EXPECT_EQ(acct.live_bytes(), expected);
  }
  // The set died inside the installed scope: everything released.
  EXPECT_EQ(acct.live_mappings(), 0u);
  EXPECT_EQ(acct.live_bytes(), 0u);
  EXPECT_EQ(acct.peak_mappings(), 2u);
  EXPECT_EQ(acct.peak_bytes(), expected);
  EXPECT_EQ(acct.total_mappings(), 2u);
}

TEST(ResourceAccountantTest, CopyAndMoveTransferAccounting) {
  ResourceAccountant acct;
  {
    ScopedAccounting install(&acct);
    Mapping m;
    m.Set(0, 1);
    MappingSet a;
    a.Add(m);
    EXPECT_EQ(acct.live_mappings(), 1u);
    MappingSet b = a;  // copy re-accounts
    EXPECT_EQ(acct.live_mappings(), 2u);
    MappingSet c = std::move(a);  // move steals a's accounting
    EXPECT_EQ(acct.live_mappings(), 2u);
  }
  EXPECT_EQ(acct.live_mappings(), 0u);
  EXPECT_EQ(acct.peak_mappings(), 2u);
}

// The hand-computed join: G = {(a p b), (a p c), (b q d)} and
// P = (?x p ?y) AND (?y q ?z).
//   ⟦(?x p ?y)⟧G = {x→a,y→b}, {x→a,y→c}      (2 mappings, 2 bindings each)
//   ⟦(?y q ?z)⟧G = {y→b,z→d}                 (1 mapping, 2 bindings)
//   join          = {x→a,y→b,z→d}            (1 mapping, 3 bindings)
// All three sets are alive when the join output completes, so
// peak = total = 4 mappings; bytes follow Mapping::ApproxBytes exactly.
class JoinAccountingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        engine_.LoadGraphText("g", "a p b .\nb q d .\na p c .\n").ok());
    pattern_ = engine_.Parse("(?x p ?y) AND (?y q ?z)").value();
  }

  uint64_t TwoBindingBytes() {
    Mapping m;
    m.Set(0, 1);
    m.Set(1, 2);
    return m.ApproxBytes();
  }
  uint64_t ThreeBindingBytes() {
    Mapping m;
    m.Set(0, 1);
    m.Set(1, 2);
    m.Set(2, 3);
    return m.ApproxBytes();
  }

  Engine engine_;
  PatternPtr pattern_;
};

TEST_F(JoinAccountingTest, ExactPeakOnHandComputedJoin) {
  ResourceAccountant acct;
  EvalOptions options;
  options.accountant = &acct;
  Result<MappingSet> r = engine_.Eval("g", pattern_, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);

  EXPECT_EQ(acct.total_mappings(), 4u);
  EXPECT_EQ(acct.peak_mappings(), 4u);
  const uint64_t expected_peak = 3 * TwoBindingBytes() + ThreeBindingBytes();
  EXPECT_EQ(acct.peak_bytes(), expected_peak);
  EXPECT_EQ(acct.total_bytes(), expected_peak);
  // The result set was detached before escaping: nothing is live anymore,
  // and destroying the result later must not underflow the counters.
  EXPECT_EQ(acct.live_mappings(), 0u);
  EXPECT_EQ(acct.live_bytes(), 0u);
}

TEST_F(JoinAccountingTest, FiguresAgreeAcrossThreadCounts) {
  uint64_t totals[2], peaks[2], bytes[2];
  int idx = 0;
  for (int threads : {1, 4}) {
    ResourceAccountant acct;
    EvalOptions options;
    options.threads = threads;
    options.accountant = &acct;
    Result<MappingSet> r = engine_.Eval("g", pattern_, options);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().size(), 1u);
    EXPECT_EQ(acct.live_mappings(), 0u) << "threads=" << threads;
    EXPECT_GE(acct.peak_mappings(), r.value().size());
    EXPECT_LE(acct.peak_mappings(), acct.total_mappings());
    totals[idx] = acct.total_mappings();
    peaks[idx] = acct.peak_mappings();
    bytes[idx] = acct.total_bytes();
    ++idx;
  }
  // Deterministic merges: the parallel path materializes the same
  // mappings, so the accountant sees identical totals and peaks.
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(peaks[0], peaks[1]);
  EXPECT_EQ(bytes[0], bytes[1]);
}

TEST_F(JoinAccountingTest, CleanResetBetweenQueries) {
  ResourceAccountant acct;
  EvalOptions options;
  options.accountant = &acct;
  ASSERT_TRUE(engine_.Eval("g", pattern_, options).ok());
  EXPECT_EQ(acct.peak_mappings(), 4u);

  acct.Reset();
  EXPECT_EQ(acct.live_mappings(), 0u);
  EXPECT_EQ(acct.peak_mappings(), 0u);
  EXPECT_EQ(acct.total_mappings(), 0u);
  EXPECT_EQ(acct.total_bytes(), 0u);

  // Second query against the reset accountant: figures are per-query, not
  // cumulative across the reset.
  ASSERT_TRUE(engine_.Eval("g", pattern_, options).ok());
  EXPECT_EQ(acct.total_mappings(), 4u);
  EXPECT_EQ(acct.peak_mappings(), 4u);
}

TEST(ResourceAccountantTest, StaleSetsSkipDecrementAfterReset) {
  ResourceAccountant acct;
  ScopedAccounting install(&acct);
  Mapping m;
  m.Set(0, 1);
  {
    MappingSet s;
    s.Add(m);
    EXPECT_EQ(acct.live_mappings(), 1u);
    acct.Reset();
    EXPECT_EQ(acct.live_mappings(), 0u);
    // s dies here holding a pre-reset epoch: it must not decrement counts
    // it no longer owns (underflow would wrap the unsigned gauge).
  }
  EXPECT_EQ(acct.live_mappings(), 0u);
  // And a set from the current epoch still accounts normally.
  {
    MappingSet s;
    s.Add(m);
    EXPECT_EQ(acct.live_mappings(), 1u);
  }
  EXPECT_EQ(acct.live_mappings(), 0u);
}

TEST(ResourceAccountantTest, ScopedInstallRestoresOuterAccountant) {
  ResourceAccountant outer;
  ResourceAccountant inner;
  EXPECT_EQ(ResourceAccountant::Current(), nullptr);
  {
    ScopedAccounting a(&outer);
    EXPECT_EQ(ResourceAccountant::Current(), &outer);
    {
      ScopedAccounting b(&inner);
      EXPECT_EQ(ResourceAccountant::Current(), &inner);
    }
    EXPECT_EQ(ResourceAccountant::Current(), &outer);
  }
  EXPECT_EQ(ResourceAccountant::Current(), nullptr);
}

TEST(ResourceAccountantTest, ExplainAnalyzeCarriesMemoryFigures) {
  Engine engine;
  ASSERT_TRUE(
      engine.LoadGraphText("g", "a p b .\nb q d .\na p c .\n").ok());
  Result<QueryExplanation> ex =
      engine.QueryExplained("g", "(?x p ?y) AND (?y q ?z)");
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex.value().peak_mappings, 4u);
  EXPECT_EQ(ex.value().total_mappings, 4u);
  EXPECT_GT(ex.value().peak_bytes, 0u);
  // The rendered header carries the figures.
  EXPECT_NE(ex.value().ToString().find("mem: peak 4 mappings"),
            std::string::npos);
}

TEST(ResourceAccountantTest, EngineMetricsRecordPeaks) {
  Engine engine;
  engine.EnableMetrics();
  ASSERT_TRUE(
      engine.LoadGraphText("g", "a p b .\nb q d .\na p c .\n").ok());
  ASSERT_TRUE(engine.Query("g", "(?x p ?y) AND (?y q ?z)").ok());
  RegistrySnapshot snap = engine.MetricsSnapshot();
  EXPECT_EQ(snap.gauges.at("engine.peak_mappings"), 4);
  EXPECT_GT(snap.gauges.at("engine.peak_bytes"), 0);
  EXPECT_EQ(snap.counters.at("engine.total_mappings"), 4u);
  EXPECT_EQ(snap.histograms.at("engine.peak_mappings_per_query").count, 1u);
  // Graph gauges updated on load.
  EXPECT_EQ(snap.gauges.at("engine.graph_triples"), 3);
  EXPECT_GT(snap.gauges.at("engine.graph_bytes"), 0);
}

}  // namespace
}  // namespace rdfql
