#include "parser/parser.h"

#include <gtest/gtest.h>

#include "algebra/pattern_printer.h"
#include "util/random.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

PatternPtr MustParse(const std::string& text, Dictionary* dict) {
  Result<PatternPtr> r = ParsePattern(text, dict);
  if (!r.ok()) {
    ADD_FAILURE() << "parse failed: " << r.status().ToString();
    return nullptr;
  }
  return r.value();
}

TEST(ParserTest, ParsesTriple) {
  Dictionary dict;
  PatternPtr p = MustParse("(?x founder ?o)", &dict);
  ASSERT_EQ(p->kind(), PatternKind::kTriple);
  EXPECT_TRUE(p->triple().s.is_var());
  EXPECT_TRUE(p->triple().p.is_iri());
  EXPECT_EQ(dict.IriName(p->triple().p.iri()), "founder");
}

TEST(ParserTest, ParsesBinaryOperatorsWithPrecedence) {
  Dictionary dict;
  // AND binds tighter than OPT, OPT tighter than UNION.
  PatternPtr p =
      MustParse("(?a x ?b) AND (?b x ?c) OPT (?c x ?d) UNION (?e x ?f)",
                &dict);
  ASSERT_EQ(p->kind(), PatternKind::kUnion);
  EXPECT_EQ(p->left()->kind(), PatternKind::kOpt);
  EXPECT_EQ(p->left()->left()->kind(), PatternKind::kAnd);
}

TEST(ParserTest, ParsesNestedParentheses) {
  Dictionary dict;
  PatternPtr p = MustParse("((?x a b) UNION ((?x c ?y) AND (?y d ?z)))",
                           &dict);
  ASSERT_EQ(p->kind(), PatternKind::kUnion);
  EXPECT_EQ(p->right()->kind(), PatternKind::kAnd);
}

TEST(ParserTest, ParsesSelect) {
  Dictionary dict;
  PatternPtr p = MustParse("(SELECT {?x ?y} WHERE (?x a ?y))", &dict);
  ASSERT_EQ(p->kind(), PatternKind::kSelect);
  EXPECT_EQ(p->projection().size(), 2u);
}

TEST(ParserTest, ParsesNs) {
  Dictionary dict;
  PatternPtr p = MustParse("NS((?x a b) UNION (?x c ?y))", &dict);
  ASSERT_EQ(p->kind(), PatternKind::kNs);
  EXPECT_EQ(p->child()->kind(), PatternKind::kUnion);
}

TEST(ParserTest, ParsesMinus) {
  Dictionary dict;
  PatternPtr p = MustParse("(?x a b) MINUS (?x c ?y)", &dict);
  ASSERT_EQ(p->kind(), PatternKind::kMinus);
}

TEST(ParserTest, ParsesFilterConditions) {
  Dictionary dict;
  PatternPtr p = MustParse(
      "((?x a ?y) FILTER (bound(?x) & (?y = c | !(?x = ?y))))", &dict);
  ASSERT_EQ(p->kind(), PatternKind::kFilter);
  EXPECT_EQ(p->condition()->kind(), Builtin::Kind::kAnd);
}

TEST(ParserTest, ParsesFilterAtomWithoutParens) {
  Dictionary dict;
  PatternPtr p = MustParse("(?x a ?y) FILTER bound(?x)", &dict);
  ASSERT_EQ(p->kind(), PatternKind::kFilter);
  EXPECT_EQ(p->condition()->kind(), Builtin::Kind::kBound);
}

TEST(ParserTest, ParsesNotEqualSugar) {
  Dictionary dict;
  PatternPtr p = MustParse("(?x a ?y) FILTER ?x != ?y", &dict);
  ASSERT_EQ(p->kind(), PatternKind::kFilter);
  EXPECT_EQ(p->condition()->kind(), Builtin::Kind::kNot);
}

TEST(ParserTest, ParsesAngleBracketIris) {
  Dictionary dict;
  PatternPtr p = MustParse("(?x <http://ex/p> <a weird iri>)", &dict);
  EXPECT_EQ(dict.FindIri("http://ex/p"), p->triple().p.iri());
  EXPECT_EQ(dict.FindIri("a weird iri"), p->triple().o.iri());
}

TEST(ParserTest, ReportsErrors) {
  Dictionary dict;
  EXPECT_FALSE(ParsePattern("", &dict).ok());
  EXPECT_FALSE(ParsePattern("(?x a)", &dict).ok());
  EXPECT_FALSE(ParsePattern("(?x a b) AND", &dict).ok());
  EXPECT_FALSE(ParsePattern("(?x a b) EXTRA (?x a b)", &dict).ok());
  EXPECT_FALSE(ParsePattern("SELECT {?x} (?x a b)", &dict).ok());
}

TEST(ParserTest, RejectsDeeplyNestedPatterns) {
  // 100k levels of grouping would overflow the recursive-descent stack
  // without the depth guard; it must come back as a parse error instead.
  constexpr size_t kDepth = 100'000;
  std::string text;
  text.reserve(2 * kDepth + 16);
  text.append(kDepth, '(');
  text += "(?x p ?y)";
  text.append(kDepth, ')');
  Dictionary dict;
  Result<PatternPtr> r = ParsePattern(text, &dict);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("nesting too deep"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserTest, RejectsDeeplyNestedFilterConditions) {
  // Same guard for the condition sub-grammar: a long chain of '!' recurses
  // through ParseCondNot.
  std::string text = "(?x p ?y) FILTER ";
  text.append(100'000, '!');
  text += "bound(?x)";
  Dictionary dict;
  Result<PatternPtr> r = ParsePattern(text, &dict);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("nesting too deep"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserTest, AcceptsReasonableNesting) {
  // Well below the guard: 100 levels of grouping still parse fine.
  std::string text;
  text.append(100, '(');
  text += "(?x p ?y)";
  text.append(100, ')');
  Dictionary dict;
  PatternPtr p = MustParse(text, &dict);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), PatternKind::kTriple);
}

TEST(ParserTest, ParsesConstructQuery) {
  Dictionary dict;
  Result<ParsedConstruct> r = ParseConstruct(
      "CONSTRUCT { (?n affiliated_to ?u) (?n email ?e) } WHERE "
      "(((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e))",
      &dict);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->templ.size(), 2u);
  EXPECT_EQ(r->where->kind(), PatternKind::kOpt);
}

TEST(ParserTest, ConstructRequiresTemplateBraces) {
  Dictionary dict;
  EXPECT_FALSE(ParseConstruct("CONSTRUCT (?a b c) WHERE (?a b c)", &dict).ok());
}

// Robustness: random token soup must produce a Status, never a crash, and
// never a silent success for garbage endings.
TEST(ParserTest, SurvivesRandomTokenSoup) {
  const char* tokens[] = {"(",      ")",     "{",     "}",    "?x",
                          "?y",     "iri",   "AND",   "UNION", "OPT",
                          "FILTER", "SELECT", "WHERE", "NS",   "MINUS",
                          "bound",  "=",     "!",     "&",    "|",
                          "true",   "false", ".",     "<a b>"};
  Rng rng(666);
  int ok_count = 0;
  for (int i = 0; i < 3000; ++i) {
    Dictionary dict;
    std::string text;
    int len = 1 + static_cast<int>(rng.NextBelow(12));
    for (int t = 0; t < len; ++t) {
      text += tokens[rng.NextBelow(std::size(tokens))];
      text += ' ';
    }
    Result<PatternPtr> r = ParsePattern(text, &dict);
    if (r.ok()) ++ok_count;  // fine — just must not crash
  }
  // Some soups happen to be valid patterns, most are not.
  EXPECT_LT(ok_count, 3000);
}

TEST(ParserTest, SurvivesRandomBytes) {
  Rng rng(667);
  for (int i = 0; i < 2000; ++i) {
    Dictionary dict;
    std::string text;
    int len = static_cast<int>(rng.NextBelow(30));
    for (int t = 0; t < len; ++t) {
      text += static_cast<char>(32 + rng.NextBelow(95));
    }
    ParsePattern(text, &dict);  // must not crash
  }
}

// Printer output must parse back to a structurally identical pattern.
TEST(ParserTest, RoundTripsRandomPatterns) {
  Dictionary dict;
  Rng rng(2024);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.allow_minus = spec.allow_ns = true;
  spec.max_depth = 4;
  for (int i = 0; i < 200; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict, &rng);
    std::string text = PatternToString(p, dict);
    Result<PatternPtr> reparsed = ParsePattern(text, &dict);
    ASSERT_TRUE(reparsed.ok())
        << text << " -> " << reparsed.status().ToString();
    EXPECT_TRUE(Pattern::Equal(p, reparsed.value())) << text;
  }
}

}  // namespace
}  // namespace rdfql
