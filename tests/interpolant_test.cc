// Tests of the effective Theorem 4.1 machinery (fo/interpolant_search.h):
// finding Q ∈ SPARQL[AUFS] with P ≡s Q for weakly-monotone P, and
// verifying that non-weakly-monotone P are rejected with counterexamples.

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "analysis/well_designed.h"
#include "fo/interpolant_search.h"
#include "parser/parser.h"
#include "util/random.h"
#include "workload/pattern_generator.h"
#include "workload/scenarios.h"

namespace rdfql {
namespace {

class InterpolantTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Dictionary dict_;
};

TEST_F(InterpolantTest, WellDesignedGetsTreeTranslation) {
  Result<AufsTranslation> t =
      FindAufsTranslation(Parse(scenarios::Example31Query()), &dict_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->method, TranslationMethod::kWellDesignedTree);
  EXPECT_TRUE(t->verified);
  EXPECT_TRUE(InFragment(t->q, "AUFS"));
}

TEST_F(InterpolantTest, NsPatternGetsUnionTranslation) {
  Result<AufsTranslation> t = FindAufsTranslation(
      Parse("NS((?x a ?y) UNION ((?x a ?y) AND (?y b ?z))) UNION "
            "NS((?x c ?w))"),
      &dict_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->method, TranslationMethod::kNsPatternUnion);
  EXPECT_TRUE(t->verified);
  EXPECT_TRUE(InFragment(t->q, "AUFS"));
}

TEST_F(InterpolantTest, Theorem36WitnessVerifiesViaEnvelope) {
  // The Theorem 3.6 witness is weakly monotone but not (union of) well
  // designed; its monotone envelope must verify as ≡s.
  Result<AufsTranslation> t =
      FindAufsTranslation(Parse(scenarios::Theorem36Witness()), &dict_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->method, TranslationMethod::kMonotoneEnvelope);
  EXPECT_TRUE(t->verified) << (t->counterexample.has_value()
                                   ? t->counterexample->explanation
                                   : "");
}

TEST_F(InterpolantTest, Theorem35WitnessVerifiesViaEnvelope) {
  Result<AufsTranslation> t =
      FindAufsTranslation(Parse(scenarios::Theorem35Witness()), &dict_);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->verified);
}

TEST_F(InterpolantTest, NonWeaklyMonotonePatternIsRefuted) {
  // Example 3.3 is not weakly monotone, so *no* AUFS pattern is ≡s to it;
  // the verification must fail and return a counterexample.
  Result<AufsTranslation> t =
      FindAufsTranslation(Parse(scenarios::Example33Query()), &dict_);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->verified);
  ASSERT_TRUE(t->counterexample.has_value());
}

// Corollary 4.2 empirically: for random patterns, weak monotonicity (as
// observed by the tester) coincides with the envelope verifying as ≡s.
TEST_F(InterpolantTest, EnvelopeVerifiesForWeaklyMonotonePatterns) {
  Rng rng(41);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.allow_union = true;
  spec.max_depth = 3;
  MonotonicityOptions opts;
  opts.trials = 120;
  int agreements = 0, total = 0;
  for (int i = 0; i < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    bool wm = LooksWeaklyMonotone(p, &dict_, opts);
    Result<AufsTranslation> t = FindAufsTranslation(p, &dict_, opts);
    ASSERT_TRUE(t.ok());
    ++total;
    // verified ⇒ the envelope is ≡s to P ⇒ P is (empirically) weakly
    // monotone. The converse can fail for patterns where weak monotonicity
    // hides deeper; require at least implication, count agreement.
    if (t->verified) {
      EXPECT_TRUE(wm);
    }
    if (t->verified == wm) ++agreements;
  }
  // The two notions should agree on the overwhelming majority.
  EXPECT_GE(agreements * 10, total * 8);
}

// Corollary 5.2, effective: subsumption-free weakly-monotone patterns are
// plainly equivalent to NS of their envelope.
TEST_F(InterpolantTest, SimplePatternTranslationForSfWmPatterns) {
  // The Theorem 3.5 witness: in AOF ∖ WD, weakly monotone, subsumption
  // free — exactly Corollary 5.5's scope.
  Result<AufsTranslation> t = FindSimplePatternTranslation(
      Parse(scenarios::Theorem35Witness()), &dict_);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->verified);
  EXPECT_TRUE(IsSimplePattern(t->q));

  // Example 3.1 (well designed): handled by the tree path.
  Result<AufsTranslation> t31 = FindSimplePatternTranslation(
      Parse(scenarios::Example31Query()), &dict_);
  ASSERT_TRUE(t31.ok());
  EXPECT_EQ(t31->method, TranslationMethod::kWellDesignedTree);
  EXPECT_TRUE(t31->verified);

  // Example 3.3 (not weakly monotone): refuted with a counterexample.
  Result<AufsTranslation> t33 = FindSimplePatternTranslation(
      Parse(scenarios::Example33Query()), &dict_);
  ASSERT_TRUE(t33.ok());
  EXPECT_FALSE(t33->verified);
  EXPECT_TRUE(t33->counterexample.has_value());
}

TEST_F(InterpolantTest, SimplePatternTranslationOnRandomWdPatterns) {
  Rng rng(52);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.allow_filter = true;
  spec.max_depth = 3;
  MonotonicityOptions opts;
  opts.trials = 60;
  int tested = 0;
  for (int i = 0; i < 200 && tested < 25; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    if (!IsWellDesigned(p)) continue;
    ++tested;
    Result<AufsTranslation> t =
        FindSimplePatternTranslation(p, &dict_, opts);
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE(t->verified) << i;
    EXPECT_TRUE(IsSimplePattern(t->q));
  }
  EXPECT_GE(tested, 10);
}

TEST_F(InterpolantTest, GapFinderAcceptsEquivalentPatterns) {
  PatternPtr p = Parse("(?x a ?y) UNION (?y b ?x)");
  EXPECT_FALSE(
      FindSubsumptionEquivalenceGap(p, p, &dict_).has_value());
  // ≡s is insensitive to subsumed duplicates:
  PatternPtr q = Parse("((?x a ?y) UNION (?y b ?x)) UNION "
                       "(SELECT {?x} WHERE (?x a ?y))");
  EXPECT_FALSE(FindSubsumptionEquivalenceGap(p, q, &dict_).has_value());
}

TEST_F(InterpolantTest, GapFinderRejectsInequivalentPatterns) {
  PatternPtr p = Parse("(?x a ?y)");
  PatternPtr q = Parse("(?x b ?y)");
  EXPECT_TRUE(FindSubsumptionEquivalenceGap(p, q, &dict_).has_value());
}

}  // namespace
}  // namespace rdfql
