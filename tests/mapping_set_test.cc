#include "algebra/mapping_set.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/thread_pool.h"

namespace rdfql {
namespace {

Mapping Make(std::vector<std::pair<VarId, TermId>> b) {
  return Mapping::FromBindings(std::move(b));
}

TEST(MappingSetTest, AddDeduplicates) {
  MappingSet s;
  EXPECT_TRUE(s.Add(Make({{1, 10}})));
  EXPECT_FALSE(s.Add(Make({{1, 10}})));
  EXPECT_EQ(s.size(), 1u);
}

TEST(MappingSetTest, JoinMatchesDefinition) {
  // Ω1 = {[x→1], [x→2]}, Ω2 = {[x→1, y→5], [y→6]}.
  MappingSet a = MappingSet::FromList({Make({{1, 1}}), Make({{1, 2}})});
  MappingSet b =
      MappingSet::FromList({Make({{1, 1}, {2, 5}}), Make({{2, 6}})});
  MappingSet joined = MappingSet::Join(a, b);
  // [x→1]⋈[x→1,y→5] = [x→1,y→5]; [x→1]⋈[y→6]; [x→2]⋈[y→6];
  // [x→2] vs [x→1,y→5] incompatible.
  MappingSet expected = MappingSet::FromList({Make({{1, 1}, {2, 5}}),
                                              Make({{1, 1}, {2, 6}}),
                                              Make({{1, 2}, {2, 6}})});
  EXPECT_EQ(joined, expected);
}

TEST(MappingSetTest, JoinWithEmptyMappingIsIdentityLike) {
  MappingSet a = MappingSet::FromList({Make({{1, 1}})});
  MappingSet unit = MappingSet::FromList({Mapping()});
  EXPECT_EQ(MappingSet::Join(a, unit), a);
  EXPECT_EQ(MappingSet::Join(unit, a), a);
}

TEST(MappingSetTest, JoinWithEmptySetIsEmpty) {
  MappingSet a = MappingSet::FromList({Make({{1, 1}})});
  MappingSet empty;
  EXPECT_TRUE(MappingSet::Join(a, empty).empty());
  EXPECT_TRUE(MappingSet::Join(empty, a).empty());
}

TEST(MappingSetTest, MinusKeepsOnlyFullyIncompatible) {
  MappingSet a =
      MappingSet::FromList({Make({{1, 1}}), Make({{1, 2}}), Make({{1, 3}})});
  MappingSet b = MappingSet::FromList({Make({{1, 1}}), Make({{1, 2}, {2, 5}})});
  MappingSet diff = MappingSet::Minus(a, b);
  EXPECT_EQ(diff, MappingSet::FromList({Make({{1, 3}})}));
}

TEST(MappingSetTest, MinusAgainstEmptySetKeepsAll) {
  MappingSet a = MappingSet::FromList({Make({{1, 1}})});
  EXPECT_EQ(MappingSet::Minus(a, MappingSet()), a);
}

TEST(MappingSetTest, LeftOuterJoinDecomposition) {
  MappingSet a = MappingSet::FromList({Make({{1, 1}}), Make({{1, 2}})});
  MappingSet b = MappingSet::FromList({Make({{1, 1}, {2, 5}})});
  MappingSet louter = MappingSet::LeftOuterJoin(a, b);
  // [x→1] extends; [x→2] survives bare.
  MappingSet expected =
      MappingSet::FromList({Make({{1, 1}, {2, 5}}), Make({{1, 2}})});
  EXPECT_EQ(louter, expected);
}

TEST(MappingSetTest, SubsumptionPreorder) {
  MappingSet small = MappingSet::FromList({Make({{1, 1}})});
  MappingSet big = MappingSet::FromList({Make({{1, 1}, {2, 5}})});
  EXPECT_TRUE(MappingSet::Subsumed(small, big));
  EXPECT_FALSE(MappingSet::Subsumed(big, small));
  EXPECT_TRUE(MappingSet::Subsumed(MappingSet(), small));
}

// The hash join must agree with the reference nested-loop join on random
// heterogeneous inputs (mappings with varying domains).
TEST(MappingSetTest, HashJoinAgreesWithNestedLoop) {
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    auto random_set = [&rng]() {
      MappingSet s;
      int n = static_cast<int>(rng.NextBelow(8));
      for (int i = 0; i < n; ++i) {
        Mapping m;
        for (VarId v = 0; v < 4; ++v) {
          if (rng.NextBool(0.6)) m.Set(v, rng.NextBelow(3));
        }
        s.Add(m);
      }
      return s;
    };
    MappingSet a = random_set();
    MappingSet b = random_set();
    EXPECT_EQ(MappingSet::Join(a, b), MappingSet::JoinNestedLoop(a, b));
  }
}

// Algebraic laws of the paper's operators (on random sets): join is
// commutative and associative, union likewise, and ⟕ = ⋈ ∪ ∖.
TEST(MappingSetTest, AlgebraicLaws) {
  Rng rng(123);
  auto random_set = [&rng]() {
    MappingSet s;
    int n = static_cast<int>(rng.NextBelow(6));
    for (int i = 0; i < n; ++i) {
      Mapping m;
      for (VarId v = 0; v < 3; ++v) {
        if (rng.NextBool(0.5)) m.Set(v, rng.NextBelow(2));
      }
      s.Add(m);
    }
    return s;
  };
  for (int round = 0; round < 40; ++round) {
    MappingSet a = random_set();
    MappingSet b = random_set();
    MappingSet c = random_set();
    EXPECT_EQ(MappingSet::Join(a, b), MappingSet::Join(b, a));
    EXPECT_EQ(MappingSet::Join(MappingSet::Join(a, b), c),
              MappingSet::Join(a, MappingSet::Join(b, c)));
    EXPECT_EQ(MappingSet::UnionSets(a, b), MappingSet::UnionSets(b, a));
    EXPECT_EQ(
        MappingSet::LeftOuterJoin(a, b),
        MappingSet::UnionSets(MappingSet::Join(a, b), MappingSet::Minus(a, b)));
  }
}

// Parallel kernels must return byte-identical results to the serial ones:
// same mappings AND same insertion order (chunk-ordered merge contract).
TEST(MappingSetTest, ParallelJoinMinusOptMatchSerialExactly) {
  ThreadPool pool(4);
  Rng rng(2024);
  // Sets large enough to cross the parallel threshold (64 probe inputs).
  auto random_set = [&rng](int n) {
    MappingSet s;
    for (int i = 0; i < n; ++i) {
      Mapping m;
      for (VarId v = 0; v < 5; ++v) {
        if (rng.NextBool(0.6)) m.Set(v, rng.NextBelow(4));
      }
      s.Add(m);
    }
    return s;
  };
  for (int round = 0; round < 10; ++round) {
    MappingSet a = random_set(200);
    MappingSet b = random_set(150);
    EXPECT_EQ(MappingSet::Join(a, b).mappings(),
              MappingSet::Join(a, b, &pool).mappings());
    EXPECT_EQ(MappingSet::Minus(a, b).mappings(),
              MappingSet::Minus(a, b, &pool).mappings());
    EXPECT_EQ(MappingSet::LeftOuterJoin(a, b).mappings(),
              MappingSet::LeftOuterJoin(a, b, &pool).mappings());
  }
}

TEST(MappingSetTest, ParallelKernelsHandleSmallAndEmptyInputs) {
  // Below the parallel threshold the pool is ignored; results still match.
  ThreadPool pool(4);
  MappingSet a = MappingSet::FromList({Make({{1, 1}}), Make({{1, 2}})});
  MappingSet b = MappingSet::FromList({Make({{1, 1}, {2, 5}})});
  MappingSet empty;
  EXPECT_EQ(MappingSet::Join(a, b), MappingSet::Join(a, b, &pool));
  EXPECT_EQ(MappingSet::Minus(a, b), MappingSet::Minus(a, b, &pool));
  EXPECT_EQ(MappingSet::Join(a, empty), MappingSet::Join(a, empty, &pool));
  EXPECT_EQ(MappingSet::Minus(empty, b), MappingSet::Minus(empty, b, &pool));
}

}  // namespace
}  // namespace rdfql
