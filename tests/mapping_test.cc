#include "algebra/mapping.h"

#include <gtest/gtest.h>

namespace rdfql {
namespace {

Mapping Make(std::vector<std::pair<VarId, TermId>> b) {
  return Mapping::FromBindings(std::move(b));
}

TEST(MappingTest, EmptyMapping) {
  Mapping m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.Binds(0));
}

TEST(MappingTest, SetAndGet) {
  Mapping m;
  m.Set(3, 30);
  m.Set(1, 10);
  m.Set(2, 20);
  EXPECT_EQ(m.Get(1), std::optional<TermId>(10));
  EXPECT_EQ(m.Get(2), std::optional<TermId>(20));
  EXPECT_EQ(m.Get(3), std::optional<TermId>(30));
  EXPECT_EQ(m.Get(4), std::nullopt);
  EXPECT_EQ(m.Domain(), (std::vector<VarId>{1, 2, 3}));
}

TEST(MappingTest, SetOverwrites) {
  Mapping m;
  m.Set(1, 10);
  m.Set(1, 11);
  EXPECT_EQ(m.Get(1), std::optional<TermId>(11));
  EXPECT_EQ(m.size(), 1u);
}

TEST(MappingTest, CompatibilityAgreesOnSharedVariables) {
  Mapping a = Make({{1, 10}, {2, 20}});
  Mapping b = Make({{2, 20}, {3, 30}});
  Mapping c = Make({{2, 99}});
  EXPECT_TRUE(a.CompatibleWith(b));
  EXPECT_TRUE(b.CompatibleWith(a));
  EXPECT_FALSE(a.CompatibleWith(c));
  // Disjoint domains are always compatible.
  EXPECT_TRUE(a.CompatibleWith(Make({{7, 70}})));
  // The empty mapping is compatible with everything.
  EXPECT_TRUE(Mapping().CompatibleWith(a));
}

TEST(MappingTest, UnionMergesBindings) {
  Mapping a = Make({{1, 10}, {2, 20}});
  Mapping b = Make({{2, 20}, {3, 30}});
  Mapping u = a.UnionWith(b);
  EXPECT_EQ(u, Make({{1, 10}, {2, 20}, {3, 30}}));
}

TEST(MappingTest, SubsumptionIsDomainContainmentPlusAgreement) {
  Mapping small = Make({{1, 10}});
  Mapping big = Make({{1, 10}, {2, 20}});
  Mapping other = Make({{1, 11}, {2, 20}});

  EXPECT_TRUE(small.SubsumedBy(big));
  EXPECT_FALSE(big.SubsumedBy(small));
  EXPECT_FALSE(small.SubsumedBy(other));
  // Reflexive.
  EXPECT_TRUE(big.SubsumedBy(big));
  // Empty mapping subsumed by everything.
  EXPECT_TRUE(Mapping().SubsumedBy(small));
}

TEST(MappingTest, ProperSubsumptionExcludesEquality) {
  Mapping small = Make({{1, 10}});
  Mapping big = Make({{1, 10}, {2, 20}});
  EXPECT_TRUE(small.ProperlySubsumedBy(big));
  EXPECT_FALSE(big.ProperlySubsumedBy(big));
  EXPECT_FALSE(small.ProperlySubsumedBy(small));
}

TEST(MappingTest, RestrictTo) {
  Mapping m = Make({{1, 10}, {2, 20}, {3, 30}});
  Mapping r = m.RestrictTo({1, 3});
  EXPECT_EQ(r, Make({{1, 10}, {3, 30}}));
  EXPECT_TRUE(m.RestrictTo({}).empty());
  // Restriction to variables outside dom(µ) ignores them.
  EXPECT_EQ(m.RestrictTo({1, 9}), Make({{1, 10}}));
}

TEST(MappingTest, HashAndEquality) {
  Mapping a = Make({{1, 10}, {2, 20}});
  Mapping b = Make({{2, 20}, {1, 10}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  Mapping c = Make({{1, 10}});
  EXPECT_NE(a, c);
}

TEST(MappingTest, FromBindingsChecksDuplicatesAgree) {
  Mapping m = Make({{1, 10}, {1, 10}, {2, 20}});
  EXPECT_EQ(m.size(), 2u);
}

TEST(MappingTest, DisjointVarRangesAreAlwaysCompatible) {
  // Exercises the disjoint-range fast path: no shared variables possible
  // when one domain's VarIds all precede the other's.
  Mapping low = Make({{1, 10}, {2, 20}});
  Mapping high = Make({{3, 99}, {5, 50}});
  EXPECT_TRUE(low.CompatibleWith(high));
  EXPECT_TRUE(high.CompatibleWith(low));
  EXPECT_TRUE(Mapping().CompatibleWith(low));
  EXPECT_TRUE(low.CompatibleWith(Mapping()));
}

TEST(MappingTest, DisjointRangeUnionConcatenates) {
  Mapping low = Make({{1, 10}, {2, 20}});
  Mapping high = Make({{3, 30}, {5, 50}});
  Mapping expected = Make({{1, 10}, {2, 20}, {3, 30}, {5, 50}});
  // Both argument orders hit a fast path; result is order-normalized.
  EXPECT_EQ(low.UnionWith(high), expected);
  EXPECT_EQ(high.UnionWith(low), expected);
  EXPECT_EQ(Mapping().UnionWith(low), low);
  EXPECT_EQ(low.UnionWith(Mapping()), low);
}

TEST(MappingTest, InterleavedRangesStillMergeCorrectly) {
  // Overlapping VarId ranges with no shared variables must take the full
  // merge walk and still produce the sorted union.
  Mapping odd = Make({{1, 10}, {3, 30}});
  Mapping even = Make({{2, 20}, {4, 40}});
  EXPECT_TRUE(odd.CompatibleWith(even));
  EXPECT_EQ(odd.UnionWith(even), Make({{1, 10}, {2, 20}, {3, 30}, {4, 40}}));
  // Shared variable with conflicting values: incompatible despite
  // overlapping ranges.
  Mapping clash = Make({{2, 21}, {3, 30}});
  EXPECT_FALSE(even.CompatibleWith(clash));
}

}  // namespace
}  // namespace rdfql
