#include "analysis/containment.h"

#include "analysis/fragments.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "parser/parser.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

class ContainmentTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  CqView Cq(const std::string& text) {
    Result<CqView> v = ExtractCq(Parse(text));
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return v.value();
  }
  Dictionary dict_;
};

TEST_F(ContainmentTest, ExtractRejectsNonConjunctive) {
  EXPECT_FALSE(ExtractCq(Parse("(?x a ?y) UNION (?x b ?y)")).ok());
  EXPECT_FALSE(ExtractCq(Parse("(?x a ?y) OPT (?x b ?z)")).ok());
  EXPECT_FALSE(ExtractCq(Parse("NS((?x a ?y))")).ok());
  EXPECT_FALSE(
      ExtractCq(Parse("(?x a ?y) AND (SELECT {?x} WHERE (?x b ?z))")).ok());
}

TEST_F(ContainmentTest, ExtractCollectsTriplesAndHead) {
  CqView v = Cq("(SELECT {?x} WHERE ((?x a ?y) AND (?y b ?z)))");
  EXPECT_EQ(v.triples.size(), 2u);
  EXPECT_EQ(v.head.size(), 1u);
}

TEST_F(ContainmentTest, IdenticalQueriesAreEquivalent) {
  CqView q = Cq("(?x a ?y) AND (?y b ?z)");
  EXPECT_TRUE(CqEquivalent(q, q, &dict_));
}

TEST_F(ContainmentTest, MoreConstrainedIsContained) {
  // Q1 asks for x with both an a- and b-edge; Q2 only the a-edge.
  CqView q1 = Cq("(SELECT {?x} WHERE ((?x a ?y) AND (?x b ?z)))");
  CqView q2 = Cq("(SELECT {?x} WHERE (?x a ?y))");
  EXPECT_TRUE(CqContained(q1, q2, &dict_));
  EXPECT_FALSE(CqContained(q2, q1, &dict_));
}

TEST_F(ContainmentTest, HomomorphismFoldsVariables) {
  // A length-2 a-path is contained in a length-1 a-pattern (project x),
  // and the cyclic query maps onto the self-loop query.
  CqView path2 = Cq("(SELECT {?x} WHERE ((?x a ?y) AND (?y a ?z)))");
  CqView path1 = Cq("(SELECT {?x} WHERE (?x a ?y))");
  EXPECT_TRUE(CqContained(path2, path1, &dict_));
  EXPECT_FALSE(CqContained(path1, path2, &dict_));

  CqView loop = Cq("(SELECT {?x} WHERE (?x a ?x))");
  EXPECT_TRUE(CqContained(loop, path1, &dict_));
  EXPECT_FALSE(CqContained(path1, loop, &dict_));
}

TEST_F(ContainmentTest, DifferentHeadsAreIncomparable) {
  CqView q1 = Cq("(SELECT {?x} WHERE (?x a ?y))");
  CqView q2 = Cq("(SELECT {?y} WHERE (?x a ?y))");
  EXPECT_FALSE(CqContained(q1, q2, &dict_));
}

TEST_F(ContainmentTest, ConstantsMustMatch) {
  CqView qa = Cq("(SELECT {?x} WHERE (?x a c1))");
  CqView qb = Cq("(SELECT {?x} WHERE (?x a c2))");
  CqView qv = Cq("(SELECT {?x} WHERE (?x a ?y))");
  EXPECT_FALSE(CqContained(qa, qb, &dict_));
  EXPECT_TRUE(CqContained(qa, qv, &dict_));
  EXPECT_FALSE(CqContained(qv, qa, &dict_));
}

// Soundness and completeness against the semantic definition, on random
// CQ pairs and random graphs: if CqContained says yes, answers are always
// contained; if it says no, a witness graph exists (we search for it).
TEST_F(ContainmentTest, AgreesWithSemanticContainment) {
  Rng rng(77);
  PatternGenSpec spec;
  spec.allow_union = false;
  spec.max_depth = 2;
  spec.num_vars = 3;
  spec.num_iris = 2;
  int disagreements = 0;
  for (int i = 0; i < 60; ++i) {
    PatternPtr p1 = GenerateRandomPattern(spec, &dict_, &rng);
    PatternPtr p2 = GenerateRandomPattern(spec, &dict_, &rng);
    Result<CqView> v1 = ExtractCq(p1);
    Result<CqView> v2 = ExtractCq(p2);
    ASSERT_TRUE(v1.ok() && v2.ok());
    if (v1->head != v2->head) continue;
    bool contained = CqContained(*v1, *v2, &dict_);
    bool refuted = false;
    for (int trial = 0; trial < 15 && !refuted; ++trial) {
      Graph g = GenerateRandomGraph(10, 3, &dict_, &rng, "c");
      MappingSet r1 = EvalPattern(g, p1);
      MappingSet r2 = EvalPattern(g, p2);
      for (const Mapping& m : r1) {
        if (!r2.Contains(m)) {
          refuted = true;
          break;
        }
      }
    }
    if (contained && refuted) ++disagreements;  // would be a soundness bug
  }
  EXPECT_EQ(disagreements, 0);
}

TEST_F(ContainmentTest, MinimizeCqComputesTheCore) {
  // (?x a ?y) AND (?x a ?z) with head {x}: one atom is redundant.
  CqView q = Cq("(SELECT {?x} WHERE ((?x a ?y) AND (?x a ?z)))");
  CqView core = MinimizeCq(q, &dict_);
  EXPECT_EQ(core.triples.size(), 1u);
  EXPECT_TRUE(CqEquivalent(q, core, &dict_));

  // (?x a ?y) AND (?z a ?y) with head {x}: the ?z atom folds onto the ?x
  // atom, so the core has one triple. A length-2 *path* (?x a ?y)(?y a ?z)
  // does NOT minimize — reachability depth is semantic.
  CqView fold = Cq("(SELECT {?x} WHERE ((?x a ?y) AND (?z a ?y)))");
  EXPECT_EQ(MinimizeCq(fold, &dict_).triples.size(), 1u);
  CqView path = Cq("(SELECT {?x} WHERE ((?x a ?y) AND (?y a ?z)))");
  EXPECT_EQ(MinimizeCq(path, &dict_).triples.size(), 2u);

  // A genuinely non-redundant query stays intact.
  CqView tight = Cq("(SELECT {?x} WHERE ((?x a ?y) AND (?x b ?y)))");
  EXPECT_EQ(MinimizeCq(tight, &dict_).triples.size(), 2u);

  // Full-head queries cannot drop atoms binding head variables.
  CqView full = Cq("(?x a ?y) AND (?x a ?z)");
  EXPECT_EQ(MinimizeCq(full, &dict_).triples.size(), 2u);
}

TEST_F(ContainmentTest, MinimizeCqPreservesSemantics) {
  Rng rng(909);
  PatternGenSpec spec;
  spec.allow_union = false;
  spec.allow_select = false;
  spec.max_depth = 3;
  spec.num_vars = 3;
  spec.num_iris = 2;
  for (int i = 0; i < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    Result<CqView> v = ExtractCq(p);
    ASSERT_TRUE(v.ok());
    CqView core = MinimizeCq(*v, &dict_);
    EXPECT_LE(core.triples.size(), v->triples.size());
    PatternPtr q = CqToPattern(core);
    for (int trial = 0; trial < 5; ++trial) {
      Graph g = GenerateRandomGraph(10, 3, &dict_, &rng, "mc");
      EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, q));
    }
  }
}

TEST_F(ContainmentTest, MinimizeUnionDropsRedundantDisjuncts) {
  PatternPtr p = Parse(
      "(SELECT {?x} WHERE (?x a ?y)) UNION "
      "(SELECT {?x} WHERE ((?x a ?y) AND (?x b ?z))) UNION "
      "(SELECT {?x} WHERE (?x c ?y))");
  PatternPtr minimized = MinimizeUnion(p, &dict_);
  // The middle disjunct is contained in the first.
  EXPECT_EQ(TopLevelDisjuncts(minimized).size(), 2u);

  // Equivalence on random graphs.
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "m");
    EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, minimized));
  }
}

TEST_F(ContainmentTest, MinimizeUnionKeepsOneOfEquivalentPair) {
  PatternPtr p = Parse("(?x a ?y) UNION (?x a ?y)");
  EXPECT_EQ(TopLevelDisjuncts(MinimizeUnion(p, &dict_)).size(), 1u);
}

TEST_F(ContainmentTest, UcqContainmentCriterion) {
  // {a-edge} ∪ {b-edge} ⊑ {a-edge} ∪ {b-edge} ∪ {c-edge}.
  PatternPtr small = Parse("(?x a ?y) UNION (?x b ?y)");
  PatternPtr big = Parse("(?x a ?y) UNION (?x b ?y) UNION (?x c ?y)");
  Result<bool> forward = UcqPatternContained(small, big, &dict_);
  ASSERT_TRUE(forward.ok());
  EXPECT_TRUE(*forward);
  Result<bool> backward = UcqPatternContained(big, small, &dict_);
  ASSERT_TRUE(backward.ok());
  EXPECT_FALSE(*backward);

  // A disjunct can be covered by a *more general* disjunct.
  PatternPtr specific = Parse("((?x a ?y) AND (?x b ?z)) UNION (?x c ?w)");
  PatternPtr general = Parse("(?x a ?y) UNION (?x c ?w)");
  // Heads differ ({x,y,z} vs {x,y}), so containment fails — UCQ
  // containment is head-sensitive.
  Result<bool> r = UcqPatternContained(specific, general, &dict_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);

  // With matching projections it succeeds.
  PatternPtr proj_specific = Parse(
      "(SELECT {?x} WHERE ((?x a ?y) AND (?x b ?z))) UNION "
      "(SELECT {?x} WHERE (?x c ?w))");
  PatternPtr proj_general = Parse(
      "(SELECT {?x} WHERE (?x a ?y)) UNION (SELECT {?x} WHERE (?x c ?w))");
  Result<bool> r2 =
      UcqPatternContained(proj_specific, proj_general, &dict_);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);

  // Equivalence under disjunct reordering and duplication.
  PatternPtr p1 = Parse("(?x a ?y) UNION (?x b ?y)");
  PatternPtr p2 = Parse("(?x b ?y) UNION (?x a ?y) UNION (?x a ?y)");
  Result<bool> eq = UcqPatternEquivalent(p1, p2, &dict_);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);

  // Outside the fragment: Unsupported.
  EXPECT_FALSE(UcqPatternContained(Parse("(?x a ?y) OPT (?x b ?z)"),
                                   Parse("(?x a ?y)"), &dict_)
                   .ok());
}

// Soundness of UCQ containment against semantic evaluation.
TEST_F(ContainmentTest, UcqContainmentIsSemanticallySound) {
  Rng rng(1212);
  PatternGenSpec spec;
  spec.allow_union = true;
  spec.max_depth = 3;
  spec.num_vars = 3;
  spec.num_iris = 2;
  for (int i = 0; i < 40; ++i) {
    PatternPtr p1 = GenerateRandomPattern(spec, &dict_, &rng);
    PatternPtr p2 = GenerateRandomPattern(spec, &dict_, &rng);
    Result<bool> contained = UcqPatternContained(p1, p2, &dict_);
    if (!contained.ok() || !*contained) continue;
    for (int trial = 0; trial < 8; ++trial) {
      Graph g = GenerateRandomGraph(10, 3, &dict_, &rng, "uc");
      MappingSet r1 = EvalPattern(g, p1);
      MappingSet r2 = EvalPattern(g, p2);
      for (const Mapping& m : r1) {
        EXPECT_TRUE(r2.Contains(m));
      }
    }
  }
}

TEST_F(ContainmentTest, MinimizeUnionLeavesNonCqDisjunctsAlone) {
  PatternPtr p = Parse("((?x a ?y) OPT (?x b ?z)) UNION (?x a ?y)");
  // The OPT disjunct is not a CQ; nothing can be dropped (the CQ disjunct
  // is not comparable to it syntactically).
  EXPECT_EQ(TopLevelDisjuncts(MinimizeUnion(p, &dict_)).size(), 2u);
}

}  // namespace
}  // namespace rdfql
