#include "complexity/sat_solver.h"

#include <gtest/gtest.h>

#include "complexity/cardinality.h"
#include "complexity/coloring.h"

namespace rdfql {
namespace {

TEST(SatSolverTest, TrivialCases) {
  Cnf empty;
  EXPECT_TRUE(SolveSat(empty).satisfiable);

  Cnf unit;
  unit.num_vars = 1;
  unit.AddClause({1});
  SatResult r = SolveSat(unit);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(r.assignment[1]);

  Cnf contradiction;
  contradiction.num_vars = 1;
  contradiction.AddClause({1});
  contradiction.AddClause({-1});
  EXPECT_FALSE(SolveSat(contradiction).satisfiable);

  Cnf empty_clause;
  empty_clause.num_vars = 1;
  empty_clause.AddClause({});
  EXPECT_FALSE(SolveSat(empty_clause).satisfiable);
}

TEST(SatSolverTest, PigeonholeIsUnsat) {
  // 3 pigeons, 2 holes: p_{i,h} = var i*2 + h + 1.
  Cnf cnf;
  cnf.num_vars = 6;
  auto var = [](int pigeon, int hole) { return pigeon * 2 + hole + 1; };
  for (int pigeon = 0; pigeon < 3; ++pigeon) {
    cnf.AddClause({var(pigeon, 0), var(pigeon, 1)});
  }
  for (int hole = 0; hole < 2; ++hole) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        cnf.AddClause({-var(i, hole), -var(j, hole)});
      }
    }
  }
  EXPECT_FALSE(SolveSat(cnf).satisfiable);
}

TEST(SatSolverTest, AgreesWithBruteForceOnRandomInstances) {
  Rng rng(606);
  for (int round = 0; round < 150; ++round) {
    int n = 3 + static_cast<int>(rng.NextBelow(6));
    int m = 1 + static_cast<int>(rng.NextBelow(20));
    Cnf cnf = RandomCnf(n, m, 3, &rng);
    EXPECT_EQ(SolveSat(cnf).satisfiable, BruteForceSat(cnf).satisfiable);
  }
}

TEST(CardinalityTest, AtMostKCountsCorrectly) {
  Rng rng(9);
  for (int round = 0; round < 60; ++round) {
    int n = 2 + static_cast<int>(rng.NextBelow(5));
    int k = static_cast<int>(rng.NextBelow(n + 1));
    // Force a specific subset true and the rest false; at-most-k must be
    // satisfiable iff |subset| ≤ k.
    uint64_t mask = rng.NextBelow(uint64_t{1} << n);
    Cnf cnf;
    cnf.num_vars = n;
    std::vector<Lit> lits;
    int true_count = 0;
    for (int v = 1; v <= n; ++v) {
      lits.push_back(v);
      if ((mask >> (v - 1)) & 1) {
        cnf.AddClause({v});
        ++true_count;
      } else {
        cnf.AddClause({-v});
      }
    }
    AddAtMostK(&cnf, lits, k);
    EXPECT_EQ(SolveSat(cnf).satisfiable, true_count <= k)
        << "n=" << n << " k=" << k << " true=" << true_count;
  }
}

TEST(CardinalityTest, AtLeastKCountsCorrectly) {
  Rng rng(10);
  for (int round = 0; round < 60; ++round) {
    int n = 2 + static_cast<int>(rng.NextBelow(5));
    int k = static_cast<int>(rng.NextBelow(n + 2));
    uint64_t mask = rng.NextBelow(uint64_t{1} << n);
    Cnf cnf;
    cnf.num_vars = n;
    std::vector<Lit> lits;
    int true_count = 0;
    for (int v = 1; v <= n; ++v) {
      lits.push_back(v);
      if ((mask >> (v - 1)) & 1) {
        cnf.AddClause({v});
        ++true_count;
      } else {
        cnf.AddClause({-v});
      }
    }
    AddAtLeastK(&cnf, lits, k);
    EXPECT_EQ(SolveSat(cnf).satisfiable, true_count >= k);
  }
}

TEST(CardinalityTest, PhiAtLeastKSweepFindsMaximum) {
  // ϕ = (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2) — max true vars of a model is 2 (x3 free).
  Cnf phi;
  phi.num_vars = 3;
  phi.AddClause({1, 2});
  phi.AddClause({-1, -2});
  EXPECT_TRUE(SolveSat(PhiAtLeastK(phi, 2)).satisfiable);
  EXPECT_FALSE(SolveSat(PhiAtLeastK(phi, 3)).satisfiable);
}

TEST(ColoringTest, ChromaticNumbers) {
  EXPECT_EQ(ChromaticNumber(CompleteGraph(1)), 1);
  EXPECT_EQ(ChromaticNumber(CompleteGraph(4)), 4);

  // A 5-cycle needs 3 colors.
  SimpleGraph c5;
  c5.n = 5;
  for (int i = 0; i < 5; ++i) c5.edges.emplace_back(i, (i + 1) % 5);
  EXPECT_EQ(ChromaticNumber(c5), 3);

  // A path is 2-colorable.
  SimpleGraph path;
  path.n = 4;
  for (int i = 0; i < 3; ++i) path.edges.emplace_back(i, i + 1);
  EXPECT_EQ(ChromaticNumber(path), 2);

  // Edgeless graph: 1 color.
  SimpleGraph edgeless;
  edgeless.n = 3;
  EXPECT_EQ(ChromaticNumber(edgeless), 1);
}

TEST(ColoringTest, ColorabilityCnfMatchesBruteForce) {
  Rng rng(12);
  for (int round = 0; round < 20; ++round) {
    SimpleGraph g = RandomSimpleGraph(5, 0.5, &rng);
    for (int k = 1; k <= 4; ++k) {
      Cnf cnf = ColorabilityToCnf(g, k);
      // Brute-force coloring check.
      bool colorable = false;
      int total = 1;
      for (int i = 0; i < g.n; ++i) total *= k;
      for (int code = 0; code < total && !colorable; ++code) {
        int c = code;
        std::vector<int> color(g.n);
        for (int i = 0; i < g.n; ++i) {
          color[i] = c % k;
          c /= k;
        }
        bool ok = true;
        for (const auto& [u, v] : g.edges) {
          if (color[u] == color[v]) {
            ok = false;
            break;
          }
        }
        colorable = ok;
      }
      EXPECT_EQ(SolveSat(cnf).satisfiable, colorable);
    }
  }
}

}  // namespace
}  // namespace rdfql
