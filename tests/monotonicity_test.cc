#include "analysis/monotonicity.h"

#include <gtest/gtest.h>

#include "analysis/well_designed.h"
#include "parser/parser.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"
#include "workload/scenarios.h"

namespace rdfql {
namespace {

class MonotonicityTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Dictionary dict_;
};

TEST_F(MonotonicityTest, AufsPatternsLookMonotone) {
  EXPECT_TRUE(LooksMonotone(
      Parse("(SELECT {?x} WHERE ((?x a ?y) AND (?y b ?z))) UNION (?x c d)"),
      &dict_));
}

TEST_F(MonotonicityTest, OptPatternIsWeaklyButNotMonotone) {
  PatternPtr p = Parse(scenarios::Example31Query());
  EXPECT_TRUE(LooksWeaklyMonotone(p, &dict_));
  // The tester must find the classical counterexample: adding the email
  // triple shrinks the answer.
  EXPECT_FALSE(LooksMonotone(p, &dict_));
}

TEST_F(MonotonicityTest, Example33IsNotWeaklyMonotone) {
  std::optional<PropertyCounterexample> ce =
      FindWeakMonotonicityCounterexample(Parse(scenarios::Example33Query()),
                                         &dict_);
  ASSERT_TRUE(ce.has_value());
  EXPECT_TRUE(ce->g1.IsSubsetOf(ce->g2));
  // Re-verify the counterexample explicitly.
  PatternPtr p = Parse(scenarios::Example33Query());
  MappingSet r1 = EvalPattern(ce->g1, p);
  MappingSet r2 = EvalPattern(ce->g2, p);
  EXPECT_FALSE(MappingSet::Subsumed(r1, r2));
}

TEST_F(MonotonicityTest, Theorem35WitnessLooksWeaklyMonotone) {
  EXPECT_TRUE(
      LooksWeaklyMonotone(Parse(scenarios::Theorem35Witness()), &dict_));
}

TEST_F(MonotonicityTest, Theorem36WitnessLooksWeaklyMonotone) {
  EXPECT_TRUE(
      LooksWeaklyMonotone(Parse(scenarios::Theorem36Witness()), &dict_));
}

// [30]/[7]: every well-designed pattern is weakly monotone. The randomized
// tester must never refute that on random well-designed patterns.
TEST_F(MonotonicityTest, WellDesignedImpliesWeaklyMonotone) {
  Rng rng(31337);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.allow_filter = true;
  spec.max_depth = 3;
  MonotonicityOptions opts;
  opts.trials = 60;
  int tested = 0;
  for (int i = 0; i < 300 && tested < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    if (!IsWellDesigned(p)) continue;
    ++tested;
    std::optional<PropertyCounterexample> ce =
        FindWeakMonotonicityCounterexample(p, &dict_, opts);
    EXPECT_FALSE(ce.has_value());
  }
  EXPECT_GE(tested, 10);
}

// Monotone fragments: AUFS patterns must never be refuted.
TEST_F(MonotonicityTest, AufsImpliesMonotone) {
  Rng rng(999);
  PatternGenSpec spec;
  spec.allow_filter = true;
  spec.allow_select = true;
  spec.max_depth = 3;
  MonotonicityOptions opts;
  opts.trials = 60;
  for (int i = 0; i < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    EXPECT_FALSE(FindMonotonicityCounterexample(p, &dict_, opts).has_value());
  }
}

TEST_F(MonotonicityTest, SubsumptionFreenessTester) {
  // AFS patterns are subsumption free.
  EXPECT_TRUE(LooksSubsumptionFree(
      Parse("(SELECT {?x ?y} WHERE ((?x a ?y) AND (?y b ?z)))"), &dict_));
  // A union mixing domains is not.
  PatternPtr p = Parse("(?x a ?y) UNION ((?x a ?y) AND (?y b ?z))");
  std::optional<PropertyCounterexample> ce =
      FindSubsumptionFreenessCounterexample(p, &dict_);
  ASSERT_TRUE(ce.has_value());
  // NS repairs it.
  EXPECT_TRUE(LooksSubsumptionFree(Pattern::Ns(p), &dict_));
}

TEST_F(MonotonicityTest, EquivalenceGapFinder) {
  // Identical patterns: no gap.
  PatternPtr p = Parse("(?x a ?y) OPT (?y b ?z)");
  EXPECT_FALSE(FindEquivalenceGap(p, p, &dict_).has_value());
  // Known equivalence: OPT decomposition.
  PatternPtr decomposed = Parse(
      "((?x a ?y) AND (?y b ?z)) UNION ((?x a ?y) MINUS (?y b ?z))");
  EXPECT_FALSE(FindEquivalenceGap(p, decomposed, &dict_).has_value());
  // Known inequivalence: OPT vs plain AND.
  PatternPtr conj = Parse("(?x a ?y) AND (?y b ?z)");
  std::optional<PropertyCounterexample> gap =
      FindEquivalenceGap(p, conj, &dict_);
  ASSERT_TRUE(gap.has_value());
  // The witness mapping distinguishes the two on the witness graph.
  MappingSet rp = EvalPattern(gap->g1, p);
  MappingSet rq = EvalPattern(gap->g1, conj);
  EXPECT_NE(rp, rq);
}

// Removing triples from a graph can only lose answer information for
// weakly-monotone patterns (the mirror image of Definition 3.2, exercised
// through Graph::Erase).
TEST_F(MonotonicityTest, ErasingTriplesOnlyLosesInformation) {
  Rng rng(4242);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.allow_filter = true;
  spec.max_depth = 3;
  MonotonicityOptions opts;
  opts.trials = 60;
  int tested = 0;
  for (int i = 0; i < 200 && tested < 20; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    if (!IsWellDesigned(p)) continue;  // WD ⇒ weakly monotone
    ++tested;
    Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "er");
    if (g.empty()) continue;
    MappingSet before = EvalPattern(g, p);
    Graph shrunk = g;
    // Erase a random third of the triples.
    std::vector<Triple> triples = g.triples();
    for (const Triple& t : triples) {
      if (rng.NextBool(0.33)) shrunk.Erase(t);
    }
    MappingSet after = EvalPattern(shrunk, p);
    EXPECT_TRUE(MappingSet::Subsumed(after, before));
  }
  EXPECT_GE(tested, 10);
}

// Weak monotonicity and monotonicity coincide for patterns whose answers
// always bind every variable (e.g. OPT-free, UNION-free patterns).
TEST_F(MonotonicityTest, MonotoneImpliesWeaklyMonotoneEmpirically) {
  Rng rng(555);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.allow_union = true;
  spec.max_depth = 3;
  MonotonicityOptions opts;
  opts.trials = 50;
  for (int i = 0; i < 30; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    if (LooksMonotone(p, &dict_, opts)) {
      EXPECT_TRUE(LooksWeaklyMonotone(p, &dict_, opts));
    }
  }
}

}  // namespace
}  // namespace rdfql
