#include "algebra/pattern.h"

#include <gtest/gtest.h>

#include "algebra/pattern_printer.h"

namespace rdfql {
namespace {

class PatternTest : public ::testing::Test {
 protected:
  Dictionary dict_;
  VarId x_ = dict_.InternVar("x");
  VarId y_ = dict_.InternVar("y");
  VarId z_ = dict_.InternVar("z");
  TermId a_ = dict_.InternIri("a");
  TermId b_ = dict_.InternIri("b");

  PatternPtr Txy() {
    return Pattern::MakeTriple(Term::Var(x_), Term::Iri(a_), Term::Var(y_));
  }
  PatternPtr Tz() {
    return Pattern::MakeTriple(Term::Var(z_), Term::Iri(b_), Term::Iri(b_));
  }
};

TEST_F(PatternTest, TripleVarsAndIris) {
  PatternPtr t = Txy();
  EXPECT_EQ(t->Vars(), (std::vector<VarId>{x_, y_}));
  EXPECT_EQ(t->ScopeVars(), (std::vector<VarId>{x_, y_}));
  EXPECT_EQ(t->Iris(), (std::vector<TermId>{a_}));
  EXPECT_EQ(t->SizeInNodes(), 1u);
}

TEST_F(PatternTest, BinaryOpsUnionVars) {
  PatternPtr p = Pattern::And(Txy(), Tz());
  EXPECT_EQ(p->Vars(), (std::vector<VarId>{x_, y_, z_}));
  EXPECT_EQ(p->SizeInNodes(), 3u);
  EXPECT_TRUE(p->Uses(PatternKind::kAnd));
  EXPECT_FALSE(p->Uses(PatternKind::kOpt));
}

TEST_F(PatternTest, MinusScopeIsLeftOnly) {
  PatternPtr p = Pattern::Minus(Txy(), Tz());
  EXPECT_EQ(p->Vars(), (std::vector<VarId>{x_, y_, z_}));
  EXPECT_EQ(p->ScopeVars(), (std::vector<VarId>{x_, y_}));
}

TEST_F(PatternTest, SelectRestrictsScope) {
  PatternPtr p = Pattern::Select({x_}, Pattern::And(Txy(), Tz()));
  EXPECT_EQ(p->ScopeVars(), (std::vector<VarId>{x_}));
  // var(P) still mentions everything.
  EXPECT_EQ(p->Vars(), (std::vector<VarId>{x_, y_, z_}));
}

TEST_F(PatternTest, FilterVarsIncludeConditionVars) {
  PatternPtr p = Pattern::Filter(Txy(), Builtin::Bound(z_));
  EXPECT_EQ(p->Vars(), (std::vector<VarId>{x_, y_, z_}));
  EXPECT_EQ(p->ScopeVars(), (std::vector<VarId>{x_, y_}));
}

TEST_F(PatternTest, StructuralEquality) {
  EXPECT_TRUE(Pattern::Equal(Txy(), Txy()));
  EXPECT_FALSE(Pattern::Equal(Txy(), Tz()));
  EXPECT_TRUE(Pattern::Equal(Pattern::Opt(Txy(), Tz()),
                             Pattern::Opt(Txy(), Tz())));
  EXPECT_FALSE(Pattern::Equal(Pattern::Opt(Txy(), Tz()),
                              Pattern::And(Txy(), Tz())));
}

TEST_F(PatternTest, RenameVarsAppliesEverywhere) {
  PatternPtr p = Pattern::Select(
      {x_}, Pattern::Filter(Txy(), Builtin::EqVars(x_, y_)));
  VarId w = dict_.InternVar("w");
  PatternPtr renamed = Pattern::RenameVars(p, {{x_, w}});
  EXPECT_EQ(renamed->projection(), (std::vector<VarId>{w}));
  EXPECT_EQ(renamed->Vars(), (std::vector<VarId>{y_, w}));
}

TEST_F(PatternTest, AndAllIsLeftDeep) {
  PatternPtr p = Pattern::AndAll({Txy(), Tz(), Txy()});
  EXPECT_EQ(p->kind(), PatternKind::kAnd);
  EXPECT_EQ(p->left()->kind(), PatternKind::kAnd);
  EXPECT_EQ(p->right()->kind(), PatternKind::kTriple);
}

TEST_F(PatternTest, PrinterRendersPaperSyntax) {
  PatternPtr p = Pattern::Opt(Txy(), Tz());
  EXPECT_EQ(PatternToString(p, dict_), "((?x a ?y) OPT (?z b b))");
  PatternPtr ns = Pattern::Ns(Txy());
  EXPECT_EQ(PatternToString(ns, dict_), "NS((?x a ?y))");
  PatternPtr sel = Pattern::Select({x_, y_}, Txy());
  EXPECT_EQ(PatternToString(sel, dict_),
            "(SELECT {?x ?y} WHERE (?x a ?y))");
}

TEST_F(PatternTest, InstantiateTriple) {
  Mapping m = Mapping::FromBindings({{x_, a_}, {y_, b_}});
  Triple t = Instantiate(TriplePattern(Term::Var(x_), Term::Iri(a_),
                                       Term::Var(y_)),
                         m);
  EXPECT_EQ(t, Triple(a_, a_, b_));
}

}  // namespace
}  // namespace rdfql
