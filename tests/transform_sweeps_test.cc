// Parameterized transformation sweeps: every semantics-preserving rewrite
// in src/transform run over each applicable fragment × several seeds,
// checked against the evaluator. Complements the per-transformation unit
// tests with broad cross-fragment coverage.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/monotonicity.h"
#include "eval/evaluator.h"
#include "transform/ns_elimination.h"
#include "transform/opt_rewriter.h"
#include "transform/select_free.h"
#include "transform/union_normal_form.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

struct SweepFragment {
  const char* name;
  bool opt;
  bool filter;
  bool select;
  bool minus;
  bool ns;
};

constexpr SweepFragment kSweepFragments[] = {
    {"AUF", false, true, false, false, false},
    {"AUOF", true, true, false, false, false},
    {"AUOFS", true, true, true, false, false},
    {"AUOFS_minus", true, true, true, true, false},
    {"NS_SPARQL", true, true, true, true, true},
};

using Param = std::tuple<int, uint64_t>;

class TransformSweep : public ::testing::TestWithParam<Param> {
 protected:
  TransformSweep() {
    const SweepFragment& f = kSweepFragments[std::get<0>(GetParam())];
    spec_.allow_opt = f.opt;
    spec_.allow_filter = f.filter;
    spec_.allow_select = f.select;
    spec_.allow_minus = f.minus;
    spec_.allow_ns = f.ns;
    spec_.max_depth = 3;
  }

  // Runs `count` random (pattern, graph ×4) probes of `rewrite`, skipping
  // patterns where the rewrite reports ResourceExhausted.
  template <typename Rewrite>
  void CheckPreserves(const Rewrite& rewrite, int count) {
    Rng rng(std::get<1>(GetParam()));
    int checked = 0;
    for (int i = 0; i < count * 4 && checked < count; ++i) {
      PatternPtr p = GenerateRandomPattern(spec_, &dict_, &rng);
      Result<PatternPtr> q = rewrite(p);
      if (!q.ok()) {
        ASSERT_EQ(q.status().code(), StatusCode::kResourceExhausted);
        continue;
      }
      ++checked;
      for (int trial = 0; trial < 4; ++trial) {
        Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "ts");
        EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, q.value()));
      }
    }
    EXPECT_GE(checked, count / 2);
  }

  Dictionary dict_;
  PatternGenSpec spec_;
};

TEST_P(TransformSweep, UnionNormalFormPreserves) {
  // UNF requires NS-free input: eliminate NS first when the fragment has
  // it (which also makes this a compositional test).
  CheckPreserves(
      [this](const PatternPtr& p) -> Result<PatternPtr> {
        NormalFormLimits limits;
        limits.max_disjuncts = 3000;
        RDFQL_ASSIGN_OR_RETURN(PatternPtr ns_free, EliminateNs(p, limits));
        RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> disjuncts,
                               UnionNormalForm(ns_free, limits));
        return Pattern::UnionAll(disjuncts);
      },
      15);
}

TEST_P(TransformSweep, NsEliminationPreserves) {
  CheckPreserves(
      [](const PatternPtr& p) -> Result<PatternPtr> {
        NormalFormLimits limits;
        limits.max_disjuncts = 3000;
        return EliminateNs(p, limits);
      },
      15);
}

TEST_P(TransformSweep, MinusDesugaringPreserves) {
  CheckPreserves(
      [this](const PatternPtr& p) -> Result<PatternPtr> {
        return DesugarMinus(p, &dict_);
      },
      15);
}

TEST_P(TransformSweep, SelectFreeVersionSatisfiesLemmaF2Projection) {
  // Projection form of Lemma F.2: restricting the SELECT-free answers to
  // var(P) yields exactly the original answers.
  Rng rng(std::get<1>(GetParam()) + 7);
  for (int i = 0; i < 15; ++i) {
    PatternPtr p = GenerateRandomPattern(spec_, &dict_, &rng);
    PatternPtr sf = SelectFreeVersion(p, &dict_);
    for (int trial = 0; trial < 3; ++trial) {
      Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "sf");
      MappingSet expected = EvalPattern(g, p);
      MappingSet projected;
      for (const Mapping& m : EvalPattern(g, sf)) {
        projected.Add(m.RestrictTo(p->Vars()));
      }
      EXPECT_EQ(projected, expected);
    }
  }
}

std::string SweepParamName(const ::testing::TestParamInfo<Param>& info) {
  return std::string(kSweepFragments[std::get<0>(info.param)].name) +
         "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllFragments, TransformSweep,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(uint64_t{3}, uint64_t{19})),
    SweepParamName);

}  // namespace
}  // namespace rdfql
