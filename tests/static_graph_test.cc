#include "rdf/static_graph.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace rdfql {
namespace {

TEST(StaticGraphTest, BuildAndContains) {
  Graph g;
  g.Insert(1, 2, 3);
  g.Insert(1, 2, 4);
  g.Insert(5, 6, 1);
  StaticGraph sg = StaticGraph::Build(g);
  EXPECT_EQ(sg.size(), 3u);
  EXPECT_TRUE(sg.Contains(Triple(1, 2, 3)));
  EXPECT_FALSE(sg.Contains(Triple(1, 2, 5)));
  EXPECT_FALSE(sg.Contains(Triple(1, 9, 3)));  // unseen predicate
}

TEST(StaticGraphTest, EmptyGraph) {
  StaticGraph sg = StaticGraph::Build(Graph());
  EXPECT_TRUE(sg.empty());
  EXPECT_EQ(sg.CountMatches(kInvalidTermId, kInvalidTermId, kInvalidTermId),
            0u);
}

TEST(StaticGraphTest, RoundTripsToGraph) {
  Rng rng(1);
  Graph g;
  for (int i = 0; i < 60; ++i) {
    g.Insert(rng.NextBelow(6), rng.NextBelow(4), rng.NextBelow(6));
  }
  StaticGraph sg = StaticGraph::Build(g);
  EXPECT_EQ(sg.ToGraph(), g);
}

// Every probe shape must agree with the mutable graph's index paths.
TEST(StaticGraphTest, MatchAgreesWithGraphOnAllProbeShapes) {
  Rng rng(2);
  for (int round = 0; round < 25; ++round) {
    Graph g;
    int n = static_cast<int>(rng.NextBelow(80));
    for (int i = 0; i < n; ++i) {
      g.Insert(rng.NextBelow(6), rng.NextBelow(4), rng.NextBelow(6));
    }
    StaticGraph sg = StaticGraph::Build(g);
    for (int probe = 0; probe < 40; ++probe) {
      TermId s = rng.NextBool(0.5) ? rng.NextBelow(7) : kInvalidTermId;
      TermId p = rng.NextBool(0.5) ? rng.NextBelow(5) : kInvalidTermId;
      TermId o = rng.NextBool(0.5) ? rng.NextBelow(7) : kInvalidTermId;
      // Counts agree...
      EXPECT_EQ(sg.CountMatches(s, p, o), g.CountMatches(s, p, o));
      // ... and the emitted triples are identical as sets.
      Graph from_static;
      sg.Match(s, p, o, [&from_static](const Triple& t) {
        from_static.Insert(t);
      });
      Graph from_mutable;
      g.Match(s, p, o, [&from_mutable](const Triple& t) {
        from_mutable.Insert(t);
      });
      EXPECT_EQ(from_static, from_mutable);
    }
  }
}

TEST(StaticGraphTest, ObjectOrientedProbeUsesObjectIndex) {
  Graph g;
  for (TermId s = 0; s < 50; ++s) g.Insert(s, 100, 7);
  g.Insert(3, 100, 8);
  StaticGraph sg = StaticGraph::Build(g);
  EXPECT_EQ(sg.CountMatches(kInvalidTermId, 100, 7), 50u);
  EXPECT_EQ(sg.CountMatches(kInvalidTermId, 100, 8), 1u);
  EXPECT_EQ(sg.CountMatches(3, 100, kInvalidTermId), 2u);
}

}  // namespace
}  // namespace rdfql
