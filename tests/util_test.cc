#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace rdfql {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err = Status::NotFound("x");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  RDFQL_ASSIGN_OR_RETURN(int h, Half(x));
  RDFQL_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BoolProbabilityExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(4);
  std::vector<int> v = {1, 2, 3, 4, 5};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringUtilTest, SplitNonEmpty) {
  EXPECT_EQ(SplitNonEmpty("a,,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitNonEmpty("", ',').empty());
  EXPECT_TRUE(SplitNonEmpty(",,,", ',').empty());
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, JoinAndStartsWith) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

}  // namespace
}  // namespace rdfql
