#include "workload/university_generator.h"

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "analysis/well_designed.h"
#include "eval/evaluator.h"
#include "parser/parser.h"

namespace rdfql {
namespace {

TEST(UniversityGeneratorTest, DeterministicAndScales) {
  Dictionary dict;
  UniversitySpec spec;
  Graph g1 = GenerateUniversityGraph(spec, &dict);
  Graph g2 = GenerateUniversityGraph(spec, &dict);
  EXPECT_EQ(g1, g2);

  UniversitySpec bigger = spec;
  bigger.num_universities = 4;
  EXPECT_GT(GenerateUniversityGraph(bigger, &dict).size(), g1.size());
}

TEST(UniversityGeneratorTest, SchemaShape) {
  Dictionary dict;
  UniversitySpec spec;
  spec.num_universities = 1;
  spec.departments_per_university = 2;
  Graph g = GenerateUniversityGraph(spec, &dict);

  // Two departments attached to the university.
  EXPECT_EQ(g.CountMatches(kInvalidTermId,
                           dict.FindIri("sub_organization_of"),
                           dict.FindIri("u0")),
            2u);
  // Every professor has exactly one rank triple.
  EXPECT_EQ(g.CountMatches(kInvalidTermId, dict.FindIri("rank"),
                           kInvalidTermId),
            static_cast<size_t>(2 * spec.professors_per_department));
  // Each course has exactly one teacher.
  EXPECT_EQ(g.CountMatches(kInvalidTermId, dict.FindIri("teaches"),
                           kInvalidTermId),
            static_cast<size_t>(2 * spec.courses_per_department));
}

TEST(UniversityGeneratorTest, OptionalDataRespectsProbabilities) {
  Dictionary dict;
  UniversitySpec none;
  none.email_probability = 0.0;
  none.webpage_probability = 0.0;
  none.advisor_probability = 0.0;
  Graph g = GenerateUniversityGraph(none, &dict);
  EXPECT_EQ(g.CountMatches(kInvalidTermId, dict.FindIri("email"),
                           kInvalidTermId),
            0u);
  EXPECT_EQ(g.CountMatches(kInvalidTermId, dict.FindIri("advisor"),
                           kInvalidTermId),
            0u);

  UniversitySpec all;
  all.advisor_probability = 1.0;
  Graph g2 = GenerateUniversityGraph(all, &dict);
  size_t students = g2.CountMatches(
      kInvalidTermId, dict.FindIri("studies_at"), kInvalidTermId);
  EXPECT_EQ(g2.CountMatches(kInvalidTermId, dict.FindIri("advisor"),
                            kInvalidTermId),
            students);
}

TEST(UniversityGeneratorTest, QueryMixParsesAndClassifies) {
  Dictionary dict;
  Graph g = GenerateUniversityGraph(UniversitySpec{}, &dict);
  for (const NamedUniversityQuery& q : UniversityQueryMix()) {
    Result<PatternPtr> p = ParsePattern(q.text, &dict);
    ASSERT_TRUE(p.ok()) << q.name << ": " << p.status().ToString();
    MappingSet r = EvalPattern(g, p.value());
    EXPECT_FALSE(r.empty()) << q.name << " should match the default graph";
  }
  // The fragment labels behind the mix's design.
  auto mix = UniversityQueryMix();
  Result<PatternPtr> wd = ParsePattern(mix[2].text, &dict);
  ASSERT_TRUE(wd.ok());
  EXPECT_TRUE(IsWellDesigned(wd.value()));
  Result<PatternPtr> sp = ParsePattern(mix[4].text, &dict);
  ASSERT_TRUE(sp.ok());
  EXPECT_TRUE(IsSimplePattern(sp.value()));
}

TEST(UniversityGeneratorTest, OptAndSimpleFormsAgree) {
  // The mix's OPT advisor query and its NS (simple-pattern) form produce
  // identical answers — the paper's §5.1 encoding on realistic data.
  Dictionary dict;
  Graph g = GenerateUniversityGraph(UniversitySpec{}, &dict);
  auto mix = UniversityQueryMix();
  Result<PatternPtr> wd = ParsePattern(mix[2].text, &dict);
  Result<PatternPtr> sp = ParsePattern(mix[4].text, &dict);
  ASSERT_TRUE(wd.ok() && sp.ok());
  EXPECT_EQ(EvalPattern(g, wd.value()), EvalPattern(g, sp.value()));
}

}  // namespace
}  // namespace rdfql
