#include "optimize/optimizer.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "parser/parser.h"
#include "rdf/ntriples.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Dictionary dict_;
};

TEST(GraphStatsTest, CollectsPredicateStatistics) {
  Dictionary dict;
  Graph g;
  ASSERT_TRUE(ParseNTriples("a p b .\na p c .\nd p b .\na q b .", &dict, &g)
                  .ok());
  GraphStats stats = GraphStats::Collect(g);
  TermId p = dict.FindIri("p");
  TermId q = dict.FindIri("q");
  EXPECT_EQ(stats.total_triples(), 4u);
  EXPECT_EQ(stats.PredicateCount(p), 3u);
  EXPECT_EQ(stats.PredicateCount(q), 1u);
  EXPECT_EQ(stats.DistinctSubjects(p), 2u);
  EXPECT_EQ(stats.DistinctObjects(p), 2u);
  EXPECT_EQ(stats.PredicateCount(dict.InternIri("zzz")), 0u);
}

TEST(GraphStatsTest, EstimatesRespectBoundPositions) {
  Dictionary dict;
  Graph g;
  for (int i = 0; i < 100; ++i) {
    g.Insert(dict.InternIri("s" + std::to_string(i % 10)),
             dict.InternIri("p"), dict.InternIri("o" + std::to_string(i)));
  }
  GraphStats stats = GraphStats::Collect(g);
  Term var_s = Term::Var(dict.InternVar("s"));
  Term var_o = Term::Var(dict.InternVar("o"));
  Term p = Term::Iri(dict.FindIri("p"));
  double all = stats.EstimateCardinality(TriplePattern(var_s, p, var_o));
  double by_subject = stats.EstimateCardinality(
      TriplePattern(Term::Iri(dict.FindIri("s0")), p, var_o));
  EXPECT_GT(all, by_subject);
  EXPECT_NEAR(all, 100.0, 1.0);
  EXPECT_NEAR(by_subject, 10.0, 1.0);
}

TEST_F(OptimizerTest, MergesAndPushesFilters) {
  Graph g;
  GraphStats stats = GraphStats::Collect(g);
  Optimizer opt(&stats);
  PatternPtr p = Parse(
      "(((?x a ?y) AND (?z b ?w)) FILTER ?x = c) FILTER ?z = d");
  PatternPtr q = opt.Optimize(p);
  // Both conditions should now sit directly on their triples.
  ASSERT_EQ(q->kind(), PatternKind::kAnd);
  EXPECT_EQ(q->left()->kind(), PatternKind::kFilter);
  EXPECT_EQ(q->right()->kind(), PatternKind::kFilter);
}

TEST_F(OptimizerTest, DoesNotPushUnsafeBoundFilters) {
  Graph g;
  GraphStats stats = GraphStats::Collect(g);
  Optimizer opt(&stats);
  // !bound(?e) over an OPT: ?e is optional, so the filter must stay put.
  PatternPtr p = Parse("((?x a ?y) OPT (?x b ?e)) FILTER !bound(?e)");
  PatternPtr q = opt.Optimize(p);
  EXPECT_EQ(q->kind(), PatternKind::kFilter);
}

TEST_F(OptimizerTest, PrunesUnsatisfiableUnionBranches) {
  Graph g;
  GraphStats stats = GraphStats::Collect(g);
  Optimizer opt(&stats);
  PatternPtr p = Parse("((?x a ?y) FILTER false) UNION (?x b ?y)");
  PatternPtr q = opt.Optimize(p);
  EXPECT_EQ(q->kind(), PatternKind::kTriple);
}

TEST_F(OptimizerTest, ReordersJoinsBySelectivity) {
  Dictionary& dict = dict_;
  Graph g;
  // `rare` has 1 triple, `common` has 100.
  g.Insert(dict.InternIri("s0"), dict.InternIri("rare"),
           dict.InternIri("o0"));
  for (int i = 0; i < 100; ++i) {
    g.Insert(dict.InternIri("s" + std::to_string(i)),
             dict.InternIri("common"), dict.InternIri("t"));
  }
  GraphStats stats = GraphStats::Collect(g);
  Optimizer opt(&stats);
  PatternPtr p = Parse("(?x common ?y) AND (?z common ?w) AND (?x rare ?v)");
  PatternPtr q = opt.Optimize(p);
  // The rare triple should be evaluated first (leftmost leaf).
  const Pattern* leftmost = q.get();
  while (leftmost->kind() == PatternKind::kAnd) {
    leftmost = leftmost->left().get();
  }
  ASSERT_EQ(leftmost->kind(), PatternKind::kTriple);
  EXPECT_EQ(dict.IriName(leftmost->triple().p.iri()), "rare");
}

// The golden property: optimization never changes semantics, over random
// NS-SPARQL patterns and random graphs.
TEST_F(OptimizerTest, PreservesSemanticsOnRandomPatterns) {
  Rng rng(808);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.allow_minus = spec.allow_ns = true;
  spec.max_depth = 4;
  for (int i = 0; i < 80; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    Graph g = GenerateRandomGraph(16, 4, &dict_, &rng, "i");
    GraphStats stats = GraphStats::Collect(g);
    Optimizer opt(&stats);
    PatternPtr q = opt.Optimize(p);
    EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, q))
        << "pattern " << i;
  }
}

// Each rewrite individually preserves semantics (ablation-style).
TEST_F(OptimizerTest, IndividualRewritesPreserveSemantics) {
  Rng rng(809);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.max_depth = 4;
  OptimizerOptions configs[4];
  configs[0] = {true, false, false, false};
  configs[1] = {false, true, false, false};
  configs[2] = {false, false, true, false};
  configs[3] = {false, false, false, true};
  for (int i = 0; i < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    Graph g = GenerateRandomGraph(14, 4, &dict_, &rng, "i");
    GraphStats stats = GraphStats::Collect(g);
    for (const OptimizerOptions& config : configs) {
      Optimizer opt(&stats, config);
      EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, opt.Optimize(p)));
    }
  }
}

}  // namespace
}  // namespace rdfql
