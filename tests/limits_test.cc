#include "util/limits.h"

#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"

namespace rdfql {
namespace {

// A graph of n disjoint p-edges: (?a p ?b) AND (?c p ?d) cross-joins them
// into n^2 live mappings — the cheap way to blow past a mapping budget.
std::string EdgeGraph(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += "s" + std::to_string(i) + " p o" + std::to_string(i) + " .\n";
  }
  return out;
}

constexpr char kBlowupQuery[] = "(?a p ?b) AND (?c p ?d)";

TEST(DeadlineTest, InfiniteByDefault) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, AfterZeroMsIsExpired) {
  EXPECT_TRUE(Deadline::AfterMs(0).Expired());
  EXPECT_FALSE(Deadline::AfterMs(60'000).Expired());
}

TEST(CancellationTokenTest, FirstReasonLatches) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.status().ok());
  token.Cancel(Status::Cancelled("first"));
  token.Cancel(Status::ResourceExhausted("second"));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(token.status().message(), "first");
}

TEST(CancellationTokenTest, CheckTripsOnExpiredDeadline) {
  CancellationToken token;
  EXPECT_TRUE(token.Check());
  token.ArmDeadline(Deadline::AfterMs(0));
  EXPECT_FALSE(token.Check());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTokenTest, CooperativeCheckpointIsTrueWhenUninstalled) {
  EXPECT_EQ(CancellationToken::Current(), nullptr);
  EXPECT_TRUE(CooperativeCheckpoint());
  CancellationToken token;
  {
    ScopedCancellation install(&token);
    EXPECT_EQ(CancellationToken::Current(), &token);
    token.Cancel(Status::Cancelled("stop"));
    EXPECT_FALSE(CooperativeCheckpoint());
  }
  EXPECT_EQ(CancellationToken::Current(), nullptr);
}

// ISSUE criterion (a): the blowup query trips kResourceExhausted at every
// thread count — the caps ride on the shared accountant, so pool workers
// trip the same token the coordinator polls.
TEST(LimitsTest, MemoryCapTripsAcrossThreadCounts) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", EdgeGraph(200)).ok());
  for (int threads : {1, 2, 8}) {
    EvalOptions options;
    options.threads = threads;
    options.limits.max_live_mappings = 1000;
    Result<MappingSet> r = engine.Query("g", kBlowupQuery, options);
    ASSERT_FALSE(r.ok()) << "threads=" << threads;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << "threads=" << threads << ": " << r.status().ToString();
  }
}

TEST(LimitsTest, ByteCapTrips) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", EdgeGraph(200)).ok());
  EvalOptions options;
  options.limits.max_bytes = 16 * 1024;
  Result<MappingSet> r = engine.Query("g", kBlowupQuery, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// ISSUE criterion (b): when no limit trips, governed results are
// bit-identical to the ungoverned run at every thread count.
TEST(LimitsTest, ResultsIdenticalWhenLimitsNotHit) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(
      "g",
      "Juan was_born_in Chile .\nAna was_born_in Chile .\n"
      "Juan email juan@x .\nPedro was_born_in Peru .").ok());
  const std::string queries[] = {
      "(?x was_born_in ?c) OPT (?x email ?e)",
      "NS((?x was_born_in Chile) UNION ((?x was_born_in Chile) AND "
      "(?x email ?e)))",
      "((?x was_born_in ?c) AND (?y was_born_in ?c)) FILTER ?x != ?y",
  };
  for (const std::string& q : queries) {
    Result<MappingSet> expected = engine.Query("g", q);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    for (int threads : {1, 2, 8}) {
      EvalOptions options;
      options.threads = threads;
      options.limits.max_wall_ms = 60'000;
      options.limits.max_live_mappings = 1'000'000;
      options.limits.max_bytes = 1ull << 30;
      Result<MappingSet> governed = engine.Query("g", q, options);
      ASSERT_TRUE(governed.ok()) << governed.status().ToString();
      EXPECT_TRUE(*governed == *expected)
          << q << " differed at threads=" << threads;
    }
  }
}

// ISSUE criterion (c): on a successful run the accountant's peak is within
// the configured cap — a trip would otherwise have failed the query.
TEST(LimitsTest, PeakStaysWithinCapOnSuccess) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", EdgeGraph(20)).ok());
  constexpr uint64_t kCap = 1'000'000;
  ResourceAccountant acct;
  EvalOptions options;
  options.accountant = &acct;
  options.limits.max_live_mappings = kCap;
  Result<MappingSet> r = engine.Query("g", kBlowupQuery, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 400u);
  EXPECT_GT(acct.peak_mappings(), 0u);
  EXPECT_LE(acct.peak_mappings(), kCap);
}

TEST(LimitsTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", EdgeGraph(4)).ok());
  EvalOptions options;
  options.deadline = Deadline::AfterMs(0);
  Result<MappingSet> r = engine.Query("g", kBlowupQuery, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(LimitsTest, PreCancelledTokenReturnsCancelled) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", EdgeGraph(4)).ok());
  CancellationToken token;
  token.Cancel(Status::Cancelled("caller aborted"));
  EvalOptions options;
  options.cancel = &token;
  Result<MappingSet> r = engine.Query("g", kBlowupQuery, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(LimitsTest, EngineDefaultLimitsApplyAndPerQueryOverrideWins) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", EdgeGraph(200)).ok());
  ResourceLimits defaults;
  defaults.max_live_mappings = 1000;
  engine.SetDefaultLimits(defaults);
  EXPECT_EQ(engine.default_limits().max_live_mappings, 1000u);

  // The default governs plain queries...
  Result<MappingSet> r = engine.Query("g", kBlowupQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  // ...and a per-query limit replaces it wholesale.
  EvalOptions generous;
  generous.limits.max_live_mappings = 1'000'000;
  Result<MappingSet> ok = engine.Query("g", kBlowupQuery, generous);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->size(), 40'000u);
}

TEST(LimitsTest, RejectionsAreCountedInMetrics) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", EdgeGraph(200)).ok());

  EvalOptions capped;
  capped.limits.max_live_mappings = 1000;
  ASSERT_FALSE(engine.Query("g", kBlowupQuery, capped).ok());

  EvalOptions expired;
  expired.deadline = Deadline::AfterMs(0);
  ASSERT_FALSE(engine.Query("g", kBlowupQuery, expired).ok());

  CancellationToken token;
  token.Cancel(Status::Cancelled("caller aborted"));
  EvalOptions cancelled;
  cancelled.cancel = &token;
  ASSERT_FALSE(engine.Query("g", kBlowupQuery, cancelled).ok());

  RegistrySnapshot snap = engine.MetricsSnapshot();
  EXPECT_EQ(snap.counters.at("engine.queries_rejected"), 1u);
  EXPECT_EQ(snap.counters.at("engine.queries_deadline_exceeded"), 1u);
  EXPECT_EQ(snap.counters.at("engine.queries_cancelled"), 1u);
}

TEST(LimitsTest, ExplainAnalyzeShowsLimitsLine) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", EdgeGraph(4)).ok());

  // Ungoverned queries report "limits: none".
  Result<QueryExplanation> plain = engine.QueryExplained("g", "(?a p ?b)");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_NE(plain->ToString().find("limits: none"), std::string::npos)
      << plain->ToString();

  EvalOptions options;
  options.limits.max_wall_ms = 60'000;
  options.limits.max_live_mappings = 50'000;
  Result<QueryExplanation> governed =
      engine.QueryExplained("g", kBlowupQuery, options);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  std::string text = governed->ToString();
  EXPECT_NE(text.find("limits: wall=60000ms live_mappings=50000"),
            std::string::npos)
      << text;
}

TEST(LimitsTest, QueryExplainedEnforcesLimitsToo) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", EdgeGraph(200)).ok());
  EvalOptions options;
  options.limits.max_live_mappings = 1000;
  Result<QueryExplanation> r =
      engine.QueryExplained("g", kBlowupQuery, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// The translation pipeline refuses to materialize a blown-up AST, naming
// the offending stage in the error.
TEST(LimitsTest, TranslationRefusesExponentialAst) {
  Engine engine;
  // k nested OPTs under NS: fixed-domain UNF produces 2^k disjuncts and
  // NS-elimination squares them (Thm 5.1).
  std::string query =
      "NS(((((?x a ?a) OPT (?x b ?b)) OPT (?x c ?c)) OPT (?x d ?d)) "
      "OPT (?x e ?e))";
  TranslateOptions options;
  options.resources.max_ast_nodes = 40;
  Result<TranslationExplanation> r = engine.TranslateExplained(query, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("max_ast_nodes=40"), std::string::npos)
      << r.status().ToString();

  // A generous budget lets the same query through.
  TranslateOptions generous;
  generous.resources.max_ast_nodes = 10'000'000;
  EXPECT_TRUE(engine.TranslateExplained(query, generous).ok());
}

TEST(LimitsTest, TranslationHonorsPreCancelledToken) {
  Engine engine;
  CancellationToken token;
  token.Cancel(Status::Cancelled("caller aborted"));
  TranslateOptions options;
  options.cancel = &token;
  Result<TranslationExplanation> r = engine.TranslateExplained(
      "NS((?x a ?a) OPT (?x b ?b))", options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace rdfql
