#include "obs/query_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/thread_pool.h"

namespace rdfql {
namespace {

// Same blowup shape as limits_test: n disjoint p-edges cross-joined into
// n^2 live mappings — cheap wall time and memory on demand.
std::string EdgeGraph(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += "s" + std::to_string(i) + " p o" + std::to_string(i) + " .\n";
  }
  return out;
}

constexpr char kBlowupQuery[] = "(?a p ?b) AND (?c p ?d)";

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::string> FileLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(StableQueryHashTest, StableAcrossProcessesAndInputs) {
  // FNV-1a 64 with the standard offset/prime; pinned so a log written on
  // one machine aggregates with one written on another.
  EXPECT_EQ(StableQueryHash(""), 14695981039346656037ull);
  EXPECT_EQ(StableQueryHash("a"), 12638187200555641996ull);
  EXPECT_EQ(StableQueryHash("(?x p ?y)"), StableQueryHash("(?x p ?y)"));
  EXPECT_NE(StableQueryHash("(?x p ?y)"), StableQueryHash("(?x p ?z)"));
}

TEST(QueryLogRecordTest, JsonRoundTripPreservesEveryField) {
  QueryLogRecord r;
  r.correlation_id = 42;
  r.query_hash = StableQueryHash("q");
  r.graph = "g\"raph";  // escaping must survive the round trip
  r.query = "(?x \\ \"p\" ?y)\nline2";
  r.fragment = "SPARQL[AOF]";
  r.outcome = "resource_exhausted";
  r.error = "live mappings 1001 > 1000";
  r.unix_ms = 1754350000000ull;
  r.parse_ns = 123;
  r.optimize_ns = 456;
  r.eval_ns = 789;
  r.rows_out = 7;
  r.total_mappings = 99;
  r.peak_mappings = 55;
  r.peak_bytes = 4040;
  r.threads = 8;
  r.slow = true;
  r.cache = "result_hit";
  r.explain = "AND [rows=7]\n  triple [rows=2]";

  std::string line = QueryLogRecordToJson(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one record, one line

  QueryLogRecord back;
  std::string error;
  ASSERT_TRUE(ParseQueryLogLine(line, &back, &error)) << error;
  EXPECT_EQ(back.correlation_id, r.correlation_id);
  EXPECT_EQ(back.query_hash, r.query_hash);
  EXPECT_EQ(back.graph, r.graph);
  EXPECT_EQ(back.query, r.query);
  EXPECT_EQ(back.fragment, r.fragment);
  EXPECT_EQ(back.outcome, r.outcome);
  EXPECT_EQ(back.error, r.error);
  EXPECT_EQ(back.unix_ms, r.unix_ms);
  EXPECT_EQ(back.parse_ns, r.parse_ns);
  EXPECT_EQ(back.optimize_ns, r.optimize_ns);
  EXPECT_EQ(back.eval_ns, r.eval_ns);
  EXPECT_EQ(back.rows_out, r.rows_out);
  EXPECT_EQ(back.total_mappings, r.total_mappings);
  EXPECT_EQ(back.peak_mappings, r.peak_mappings);
  EXPECT_EQ(back.peak_bytes, r.peak_bytes);
  EXPECT_EQ(back.threads, r.threads);
  EXPECT_EQ(back.slow, r.slow);
  EXPECT_EQ(back.cache, r.cache);
  EXPECT_EQ(back.explain, r.explain);
}

TEST(QueryLogRecordTest, EmptyCacheFieldIsOmittedFromJson) {
  QueryLogRecord r;
  r.outcome = "ok";
  EXPECT_EQ(QueryLogRecordToJson(r).find("\"cache\""), std::string::npos);
  r.cache = "bypass";
  std::string line = QueryLogRecordToJson(r);
  EXPECT_NE(line.find("\"cache\":\"bypass\""), std::string::npos);
  QueryLogRecord back;
  std::string error;
  ASSERT_TRUE(ParseQueryLogLine(line, &back, &error)) << error;
  EXPECT_EQ(back.cache, "bypass");
}

TEST(QueryLogRecordTest, QueryHashIsCanonicalized) {
  // The logged hash keys the *canonical* text, so the same query logged
  // with different formatting aggregates under one hash.
  EXPECT_EQ(StableQueryHash("  (?x \t p ?y) # c"),
            StableQueryHash("(?x p ?y)"));
}

TEST(QueryLogAggregatorTest, TopHashesRanksRepeatedQueries) {
  QueryLogAggregator agg;
  auto add = [&](const char* query, uint64_t eval_ns) {
    QueryLogRecord r;
    r.query = query;
    r.query_hash = StableQueryHash(query);
    r.eval_ns = eval_ns;
    r.outcome = "ok";
    agg.Add(r);
  };
  for (int i = 0; i < 5; ++i) add("(?x p ?y)", 1000);
  for (int i = 0; i < 3; ++i) add("(?x q ?y)", 2000);
  add("(?x r ?y)", 3000);
  std::string text = agg.TopHashesText(2);
  // Ranked by count, truncated to N, with the example query text shown.
  size_t first = text.find("(?x p ?y)");
  size_t second = text.find("(?x q ?y)");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_EQ(text.find("(?x r ?y)"), std::string::npos);
  std::string json = agg.TopHashesJson(2);
  EXPECT_NE(json.find("\"distinct_hashes\":3"), std::string::npos);
  EXPECT_NE(json.find("\"count\":5"), std::string::npos);
}

TEST(QueryLogAggregatorTest, CacheOutcomesAggregate) {
  QueryLogAggregator agg;
  for (const char* outcome :
       {"result_hit", "result_hit", "miss", "bypass"}) {
    QueryLogRecord r;
    r.outcome = "ok";
    r.cache = outcome;
    agg.Add(r);
  }
  QueryLogRecord plain;  // pre-cache record: no cache field at all
  plain.outcome = "ok";
  agg.Add(plain);
  EXPECT_EQ(agg.cache_outcomes().at("result_hit"), 2u);
  EXPECT_EQ(agg.cache_outcomes().at("miss"), 1u);
  EXPECT_EQ(agg.cache_outcomes().at("bypass"), 1u);
  EXPECT_EQ(agg.cache_outcomes().count(""), 0u);
  std::string text = agg.ToText();
  EXPECT_NE(text.find("cache"), std::string::npos);
  EXPECT_NE(agg.ToJson().find("\"cache\""), std::string::npos);
}

TEST(QueryLogRecordTest, MalformedLinesAreRejected) {
  QueryLogRecord out;
  std::string error;
  for (const char* bad : {
           "",                          // empty
           "not json",                  // no object
           "{}",                        // missing version tag
           "{\"v\":2,\"outcome\":\"ok\"}",  // future version
           "{\"v\":1,\"outcome\":\"ok\"} trailing",  // bytes after object
           "{\"v\":1,\"outcome\":\"ok\"",            // unterminated
           "{\"v\":1,\"outcome\":\"ok\",\"eval_ns\":\"abc\"}",  // bad number
       }) {
    error.clear();
    EXPECT_FALSE(ParseQueryLogLine(bad, &out, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(QueryLogRecordTest, UnknownKeysAreSkippedForForwardCompat) {
  QueryLogRecord out;
  std::string error;
  ASSERT_TRUE(ParseQueryLogLine(
      "{\"v\":1,\"outcome\":\"ok\",\"future_field\":\"x\",\"rows_out\":3}",
      &out, &error))
      << error;
  EXPECT_EQ(out.rows_out, 3u);
}

TEST(QueryLogTest, RingBufferKeepsNewestOldestFirst) {
  QueryLogOptions options;
  options.ring_capacity = 4;
  QueryLog log(options);
  for (uint64_t i = 1; i <= 10; ++i) {
    QueryLogRecord r;
    r.correlation_id = i;
    log.Record(std::move(r));
  }
  std::vector<QueryLogRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].correlation_id, 7 + i);
  }
  EXPECT_EQ(log.records_seen(), 10u);
  EXPECT_EQ(log.records_logged(), 10u);  // ring eviction is not sampling
}

TEST(QueryLogTest, SamplingDropsOkButKeepsSlowAndFailed) {
  QueryLogOptions options;
  options.sample_every = 3;
  QueryLog log(options);
  auto submit = [&log](const char* outcome, bool slow) {
    QueryLogRecord r;
    r.outcome = outcome;
    r.slow = slow;
    log.Record(std::move(r));
  };
  for (int i = 0; i < 9; ++i) submit("ok", false);
  EXPECT_EQ(log.records_logged(), 3u);
  EXPECT_EQ(log.records_sampled_out(), 6u);
  submit("resource_exhausted", false);  // failed: always kept
  submit("ok", true);                   // slow: always kept
  EXPECT_EQ(log.records_logged(), 5u);
  EXPECT_EQ(log.records_sampled_out(), 6u);
  EXPECT_EQ(log.slow_queries(), 1u);
}

TEST(QueryLogTest, FileWriterEmitsOneParsableLinePerRecord) {
  std::string path = TempPath("query_log_file_test.jsonl");
  std::remove(path.c_str());
  {
    QueryLogOptions options;
    options.path = path;
    QueryLog log(options);
    ASSERT_TRUE(log.ok()) << log.error();
    for (uint64_t i = 1; i <= 5; ++i) {
      QueryLogRecord r;
      r.correlation_id = i;
      r.query = "q" + std::to_string(i);
      log.Record(std::move(r));
    }
  }  // destructor closes the file
  std::vector<std::string> lines = FileLines(path);
  ASSERT_EQ(lines.size(), 5u);
  for (size_t i = 0; i < lines.size(); ++i) {
    QueryLogRecord back;
    std::string error;
    ASSERT_TRUE(ParseQueryLogLine(lines[i], &back, &error)) << error;
    EXPECT_EQ(back.correlation_id, i + 1);
  }
  std::remove(path.c_str());
}

TEST(QueryLogTest, UnopenableFileReportsErrorButRingStillWorks) {
  QueryLogOptions options;
  options.path = "/nonexistent-dir-for-rdfql-test/q.jsonl";
  QueryLog log(options);
  EXPECT_FALSE(log.ok());
  EXPECT_FALSE(log.error().empty());
  QueryLogRecord r;
  r.correlation_id = 1;
  log.Record(std::move(r));
  EXPECT_EQ(log.Snapshot().size(), 1u);
}

TEST(QueryLogTest, QueryTextTruncatedToMaxBytes) {
  QueryLogOptions options;
  options.max_query_bytes = 16;
  QueryLog log(options);
  QueryLogRecord r;
  r.query = std::string(1000, 'x');
  log.Record(std::move(r));
  EXPECT_EQ(log.Snapshot()[0].query.size(), 16u);
}

// --- Engine integration: one record per query, typed outcomes ---

TEST(EngineQueryLogTest, OkQueryProducesOneFullRecord) {
  Engine engine;
  ASSERT_TRUE(
      engine.LoadGraphText("g", "a p b .\nb q c .\na p c .").ok());
  QueryLog log;
  engine.SetQueryLog(&log);
  const std::string query = "(?x p ?y) AND (?y q ?z)";
  Result<MappingSet> r = engine.Query("g", query);
  ASSERT_TRUE(r.ok());
  std::vector<QueryLogRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const QueryLogRecord& rec = snap[0];
  EXPECT_EQ(rec.correlation_id, 1u);
  EXPECT_EQ(rec.query_hash, StableQueryHash(query));
  EXPECT_EQ(rec.graph, "g");
  EXPECT_EQ(rec.query, query);
  EXPECT_EQ(rec.fragment, "SPARQL[A]");
  EXPECT_EQ(rec.outcome, "ok");
  EXPECT_EQ(rec.rows_out, r->size());
  EXPECT_GT(rec.parse_ns, 0u);
  EXPECT_GT(rec.eval_ns, 0u);
  EXPECT_GT(rec.unix_ms, 0u);
  EXPECT_GT(rec.total_mappings, 0u);
  EXPECT_GT(rec.peak_mappings, 0u);
  EXPECT_GT(rec.peak_bytes, 0u);
  EXPECT_FALSE(rec.slow);
  engine.SetQueryLog(nullptr);
}

TEST(EngineQueryLogTest, DetachedLogReceivesNothing) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .").ok());
  QueryLog log;
  engine.SetQueryLog(&log);
  engine.SetQueryLog(nullptr);
  ASSERT_TRUE(engine.Query("g", "(?x p ?y)").ok());
  EXPECT_EQ(log.records_seen(), 0u);
}

TEST(EngineQueryLogTest, PerQueryOverrideWinsOverEngineDefault) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .").ok());
  QueryLog default_log;
  QueryLog override_log;
  engine.SetQueryLog(&default_log);
  EvalOptions options;
  options.query_log = &override_log;
  ASSERT_TRUE(engine.Query("g", "(?x p ?y)", options).ok());
  EXPECT_EQ(default_log.records_seen(), 0u);
  EXPECT_EQ(override_log.records_seen(), 1u);
  engine.SetQueryLog(nullptr);
}

TEST(EngineQueryLogTest, TypedOutcomesAreRecorded) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", EdgeGraph(200)).ok());
  QueryLog log;
  engine.SetQueryLog(&log);

  EXPECT_FALSE(engine.Query("g", "(?x p").ok());  // parse_error
  EXPECT_FALSE(engine.Query("nosuch", "(?x p ?y)").ok());  // not_found
  {
    EvalOptions options;
    options.limits.max_live_mappings = 1000;
    EXPECT_FALSE(engine.Query("g", kBlowupQuery, options).ok());
  }
  {
    EvalOptions options;
    options.deadline = Deadline::AfterMs(0);
    EXPECT_FALSE(engine.Query("g", kBlowupQuery, options).ok());
  }
  {
    CancellationToken token;
    token.Cancel(Status::Cancelled("caller aborted"));
    EvalOptions options;
    options.cancel = &token;
    EXPECT_FALSE(engine.Query("g", kBlowupQuery, options).ok());
  }

  std::vector<QueryLogRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 5u);
  EXPECT_EQ(snap[0].outcome, "parse_error");
  EXPECT_TRUE(snap[0].fragment.empty());
  EXPECT_FALSE(snap[0].error.empty());
  EXPECT_EQ(snap[1].outcome, "not_found");
  EXPECT_EQ(snap[2].outcome, "resource_exhausted");
  EXPECT_EQ(snap[3].outcome, "deadline_exceeded");
  EXPECT_EQ(snap[4].outcome, "cancelled");
  // Rejected queries still carry identity and classification.
  EXPECT_EQ(snap[2].fragment, "SPARQL[A]");
  EXPECT_EQ(snap[2].query_hash, StableQueryHash(kBlowupQuery));
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].correlation_id, i + 1);
  }
  engine.SetQueryLog(nullptr);
}

TEST(EngineQueryLogTest, SlowQueryCapturesExplainAnalyze) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", EdgeGraph(300)).ok());
  QueryLogOptions options;
  options.slow_ms = 1;  // the 300x300 cross product takes well over 1ms
  QueryLog log(options);
  engine.SetQueryLog(&log);
  ASSERT_TRUE(engine.Query("g", kBlowupQuery).ok());
  std::vector<QueryLogRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_TRUE(snap[0].slow);
  EXPECT_EQ(log.slow_queries(), 1u);
  ASSERT_FALSE(snap[0].explain.empty());
  EXPECT_NE(snap[0].explain.find("AND"), std::string::npos);
  engine.SetQueryLog(nullptr);
}

TEST(EngineQueryLogTest, SlowExplainCaptureCanBeDisabled) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", EdgeGraph(300)).ok());
  QueryLogOptions options;
  options.slow_ms = 1;
  options.explain_slow = false;
  QueryLog log(options);
  engine.SetQueryLog(&log);
  ASSERT_TRUE(engine.Query("g", kBlowupQuery).ok());
  std::vector<QueryLogRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_TRUE(snap[0].slow);
  EXPECT_TRUE(snap[0].explain.empty());
  engine.SetQueryLog(nullptr);
}

TEST(EngineQueryLogTest, QueryExplainedLogsAndStampsCorrelationId) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .\nb q c .").ok());
  QueryLog log;
  engine.SetQueryLog(&log);
  Result<QueryExplanation> out = engine.QueryExplained("g", "(?x p ?y)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  std::vector<QueryLogRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(out->correlation_id, snap[0].correlation_id);
  // The id rides on the plan root, so a log record joins with its trace.
  ASSERT_NE(out->explanation.plan, nullptr);
  bool found = false;
  for (const auto& [name, value] : out->explanation.plan->counters) {
    if (name == "correlation_id") {
      EXPECT_EQ(value, out->correlation_id);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  engine.SetQueryLog(nullptr);
}

// --- Concurrency: bytes from concurrent writers never interleave ---

TEST(QueryLogTest, ConcurrentWritersProduceExactlyOneLinePerRecord) {
  for (int threads : {2, 4, 8}) {
    std::string path = TempPath("query_log_concurrent_" +
                                std::to_string(threads) + ".jsonl");
    std::remove(path.c_str());
    constexpr size_t kPerThread = 200;
    const size_t total = static_cast<size_t>(threads) * kPerThread;
    {
      QueryLogOptions options;
      options.path = path;
      options.ring_capacity = total;
      QueryLog log(options);
      ASSERT_TRUE(log.ok()) << log.error();
      ThreadPool pool(threads);
      pool.ParallelFor(total, [&log](size_t i) {
        QueryLogRecord r;
        r.correlation_id = i + 1;
        r.query = "(?x p" + std::to_string(i) + " ?y)";
        r.fragment = "SPARQL[triple]";
        r.eval_ns = i;
        log.Record(std::move(r));
      });
      EXPECT_EQ(log.records_seen(), total);
      EXPECT_EQ(log.records_logged(), total);
    }
    std::vector<std::string> lines = FileLines(path);
    ASSERT_EQ(lines.size(), total) << "threads=" << threads;
    uint64_t id_sum = 0;
    for (const std::string& line : lines) {
      QueryLogRecord back;
      std::string error;
      ASSERT_TRUE(ParseQueryLogLine(line, &back, &error))
          << "threads=" << threads << ": " << error;
      id_sum += back.correlation_id;
    }
    // Every record present exactly once (ids are a permutation of 1..N).
    EXPECT_EQ(id_sum, static_cast<uint64_t>(total) * (total + 1) / 2);
    std::remove(path.c_str());
  }
}

// --- The workload criterion: N queries -> N records, and the offline
// aggregator reproduces the engine's own latency percentiles ---

TEST(EngineQueryLogTest, ThousandQueriesYieldThousandRecords) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(
      "g", "Juan was_born_in Chile .\nAna was_born_in Chile .\n"
           "Juan email juan@x .").ok());
  std::string path = TempPath("query_log_thousand.jsonl");
  std::remove(path.c_str());
  QueryLogOptions options;
  options.path = path;
  options.ring_capacity = 1000;
  QueryLog log(options);
  ASSERT_TRUE(log.ok()) << log.error();
  engine.SetQueryLog(&log);
  engine.EnableMetrics();
  const std::string queries[] = {
      "(?x was_born_in ?c)",
      "(?x was_born_in ?c) OPT (?x email ?e)",
  };
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(engine.Query("g", queries[i % 2]).ok());
  }
  EXPECT_EQ(log.records_seen(), 1000u);
  EXPECT_EQ(log.records_logged(), 1000u);

  std::vector<std::string> lines = FileLines(path);
  ASSERT_EQ(lines.size(), 1000u);
  QueryLogAggregator agg;
  for (const std::string& line : lines) {
    QueryLogRecord back;
    std::string error;
    ASSERT_TRUE(ParseQueryLogLine(line, &back, &error)) << error;
    agg.Add(back);
  }
  EXPECT_EQ(agg.records(), 1000u);
  EXPECT_EQ(agg.outcomes().at("ok"), 1000u);
  EXPECT_EQ(agg.FragmentCount(QueryLogAggregator::kAllFragments), 1000u);
  EXPECT_EQ(agg.FragmentCount("SPARQL[triple]"), 500u);
  EXPECT_EQ(agg.FragmentCount("SPARQL[O]"), 500u);

  // The offline aggregator and the engine's own histogram were fed the
  // same 1000 eval_ns figures, so the percentiles must match exactly.
  RegistrySnapshot snap = engine.MetricsSnapshot();
  const RegistrySnapshot::HistogramData& hist =
      snap.histograms.at("engine.eval_ns");
  ASSERT_EQ(hist.count, 1000u);
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(
        agg.FragmentPercentile(QueryLogAggregator::kAllFragments, q),
        hist.Percentile(q))
        << "q=" << q;
  }
  engine.SetQueryLog(nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rdfql
