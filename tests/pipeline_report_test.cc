// Tests for the translation-pipeline report: pattern shapes, the
// ScopedStage RAII recorder, Engine::TranslateExplained, and the measured
// Theorem 5.1 blowup on its witness family.

#include "obs/pipeline.h"

#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"
#include "obs/tracer.h"
#include "transform/ns_elimination.h"

namespace rdfql {
namespace {

PatternPtr MustParse(Engine* engine, const std::string& text) {
  Result<PatternPtr> p = engine->Parse(text);
  EXPECT_TRUE(p.ok()) << text;
  return p.value();
}

TEST(PatternShapeTest, CountsNodesVarsAndUnionWidth) {
  Engine engine;
  PatternPtr p = MustParse(&engine, "(?x p ?y) AND (?y q ?z)");
  PatternShape s = ShapeOfPattern(*p);
  EXPECT_EQ(s.nodes, 3u);  // two triples + AND
  EXPECT_EQ(s.vars, 3u);
  EXPECT_EQ(s.union_width, 1u);

  PatternPtr u =
      MustParse(&engine, "((?x p ?y) UNION (?x q ?y)) UNION (?x r ?y)");
  s = ShapeOfPattern(*u);
  EXPECT_EQ(s.nodes, 5u);  // three triples + two UNIONs
  EXPECT_EQ(s.vars, 2u);
  EXPECT_EQ(s.union_width, 3u);

  // Nested UNION below an AND: width is the widest spine, not the sum.
  PatternPtr mixed = MustParse(
      &engine, "((?x p ?y) UNION (?x q ?y)) AND ((?x r ?z) UNION "
               "((?x s ?z) UNION (?x t ?z)))");
  s = ShapeOfPattern(*mixed);
  EXPECT_EQ(s.union_width, 3u);
}

TEST(ScopedStageTest, NullReportIsInactive) {
  Engine engine;
  PatternPtr p = MustParse(&engine, "(?x p ?y)");
  ScopedStage stage(nullptr, "noop", ShapeIfReporting(nullptr, *p));
  EXPECT_FALSE(stage.active());
}

TEST(ScopedStageTest, RecordsStageOnDestruction) {
  PipelineReport report;
  {
    ScopedStage stage(&report, "demo", PatternShape{3, 2, 1});
    EXPECT_TRUE(stage.active());
    stage.SetOut(PatternShape{9, 2, 3});
    stage.SetDetail("tripled");
  }
  ASSERT_EQ(report.stages().size(), 1u);
  const PipelineStage* s = report.Find("demo");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->ok);
  EXPECT_EQ(s->in.nodes, 3u);
  EXPECT_EQ(s->out.nodes, 9u);
  EXPECT_EQ(s->detail, "tripled");
  EXPECT_DOUBLE_EQ(s->NodeBlowup(), 3.0);
  EXPECT_TRUE(report.AllOk());
}

TEST(ScopedStageTest, ErrorStageIsReported) {
  PipelineReport report;
  {
    ScopedStage stage(&report, "failing", PatternShape{3, 2, 1});
    stage.SetError("limit exceeded");
  }
  const PipelineStage* s = report.Find("failing");
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->ok);
  EXPECT_EQ(s->error, "limit exceeded");
  EXPECT_FALSE(report.AllOk());
  EXPECT_NE(report.ToText().find("FAILED"), std::string::npos);
}

// The acceptance scenario: a UCQ + NS query through the whole pipeline.
// NS-elimination fires first; its UNION-of-AUF output then goes through
// UNION normal form, and every stage reports wall time and size in/out.
TEST(TranslateExplainedTest, ReportsStagesOnUcqNsQuery) {
  Engine engine;
  Result<TranslationExplanation> ex = engine.TranslateExplained(
      "NS(((?x a b) OPT (?x p ?y)) UNION ((?x a b) AND (?x q ?z)))");
  ASSERT_TRUE(ex.ok());
  const TranslationExplanation& t = ex.value();
  ASSERT_NE(t.input, nullptr);
  ASSERT_NE(t.output, nullptr);

  const PipelineStage* parse = t.report.Find("parse");
  ASSERT_NE(parse, nullptr);
  EXPECT_GT(parse->out.nodes, 0u);
  EXPECT_FALSE(parse->detail.empty());  // fragment description

  const PipelineStage* ns = t.report.Find("ns_elimination");
  ASSERT_NE(ns, nullptr);
  EXPECT_GT(ns->in.nodes, 0u);
  EXPECT_GT(ns->out.nodes, ns->in.nodes);  // the elimination blows up
  EXPECT_GT(ns->NodeBlowup(), 1.0);

  const PipelineStage* unf = t.report.Find("union_normal_form");
  ASSERT_NE(unf, nullptr);
  EXPECT_GE(unf->out.union_width, 1u);

  EXPECT_TRUE(t.report.AllOk());
  EXPECT_GT(t.report.TotalNs(), 0u);
  // The output is NS-free: the whole point of the translation.
  EXPECT_FALSE(t.output->Uses(PatternKind::kNs));

  // Renderings carry the stage vocabulary.
  std::string text = t.ToString();
  EXPECT_NE(text.find("ns_elimination"), std::string::npos);
  EXPECT_NE(text.find("nodes"), std::string::npos);
  std::string json = t.ToJson();
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"node_blowup\""), std::string::npos);
}

TEST(TranslateExplainedTest, ParseErrorsPropagate) {
  Engine engine;
  Result<TranslationExplanation> ex =
      engine.TranslateExplained("(?x p");
  EXPECT_FALSE(ex.ok());
}

TEST(TranslateExplainedTest, StagesMirrorOntoTracer) {
  Engine engine;
  Tracer tracer;
  TranslateOptions options;
  options.tracer = &tracer;
  Result<TranslationExplanation> ex = engine.TranslateExplained(
      "NS((?x a b) OPT (?x p ?y))", options);
  ASSERT_TRUE(ex.ok());
  // One STAGE span per recorded stage, in order.
  ASSERT_EQ(tracer.roots().size(), ex.value().report.stages().size());
  for (size_t i = 0; i < tracer.roots().size(); ++i) {
    EXPECT_EQ(tracer.roots()[i]->op, "STAGE");
    EXPECT_EQ(tracer.roots()[i]->detail,
              ex.value().report.stages()[i].name);
  }
}

TEST(TranslateExplainedTest, OptInStagesFire) {
  Engine engine;
  TranslateOptions options;
  options.desugar_minus = true;
  // Keep the desugared pattern as the final output: UNION normal form
  // would re-introduce MINUS when splitting the OPT (Prop D.1).
  options.union_normal_form = false;
  Result<TranslationExplanation> ex = engine.TranslateExplained(
      "(?x p ?y) MINUS (?x q ?z)", options);
  ASSERT_TRUE(ex.ok());
  EXPECT_NE(ex.value().report.Find("desugar_minus"), nullptr);
  EXPECT_FALSE(ex.value().output->Uses(PatternKind::kMinus));
}

// Theorem 5.1's witness family: NS over a chain of k OPTs. Lemma D.2
// splits every disjunct across the 2^k bound/unbound domain profiles, so
// the measured output size must grow at least geometrically in k and
// dominate the 2^k profile count — the "bound shape" of the paper's
// double-exponential upper bound, observed through the PipelineReport.
TEST(NsEliminationBlowupTest, WitnessFamilyMatchesBoundShape) {
  Engine engine;
  std::string inner = "(?x a b)";
  uint64_t prev_nodes = 0;
  double prev_blowup = 0;
  for (int k = 1; k <= 3; ++k) {
    inner = "(" + inner + " OPT (?x p" + std::to_string(k) + " ?y" +
            std::to_string(k) + "))";
    PatternPtr p = MustParse(&engine, "NS(" + inner + ")");
    PipelineReport report;
    Result<PatternPtr> q = EliminateNs(p, {}, &report);
    ASSERT_TRUE(q.ok()) << "k=" << k;
    const PipelineStage* stage = report.Find("ns_elimination");
    ASSERT_NE(stage, nullptr);
    EXPECT_EQ(stage->out.nodes, ShapeOfPattern(*q.value()).nodes);
    // At least the 2^k domain profiles of Lemma D.2 survive as output.
    EXPECT_GE(stage->out.nodes, uint64_t{1} << k) << "k=" << k;
    // Geometric growth between successive family members.
    EXPECT_GE(stage->out.nodes, 2 * prev_nodes) << "k=" << k;
    // And the blowup *ratio* itself grows: the construction is
    // superlinear in its input, not a constant-factor rewrite.
    EXPECT_GT(stage->NodeBlowup(), prev_blowup) << "k=" << k;
    prev_nodes = stage->out.nodes;
    prev_blowup = stage->NodeBlowup();
  }
}

}  // namespace
}  // namespace rdfql
