#include "obs/history.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rdfql {
namespace {

HistorySample FullSample() {
  HistorySample s;
  s.unix_ms = 1700000001000;
  s.seconds = 1.5;
  s.coarse = true;
  s.counters["engine.queries"] = 42;
  s.counters["eval.nodes"] = 7;
  s.gauges["engine.graph_bytes"] = -12;
  s.histograms["engine.eval_ns"] = {{128, 3}, {256, 1}};
  return s;
}

TEST(HistorySampleTest, JsonRoundTrips) {
  HistorySample s = FullSample();
  std::string json = s.ToJson();
  HistorySample parsed;
  std::string error;
  ASSERT_TRUE(ParseHistorySample(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.unix_ms, s.unix_ms);
  EXPECT_DOUBLE_EQ(parsed.seconds, s.seconds);
  EXPECT_EQ(parsed.coarse, s.coarse);
  EXPECT_EQ(parsed.counters, s.counters);
  EXPECT_EQ(parsed.gauges, s.gauges);
  EXPECT_EQ(parsed.histograms, s.histograms);
  // Serialization is canonical: a parsed sample re-serializes identically.
  EXPECT_EQ(parsed.ToJson(), json);
}

TEST(HistorySampleTest, EmptySampleRoundTrips) {
  HistorySample s;
  s.unix_ms = 5;
  HistorySample parsed;
  std::string error;
  ASSERT_TRUE(ParseHistorySample(s.ToJson(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.unix_ms, 5u);
  EXPECT_TRUE(parsed.counters.empty());
  EXPECT_TRUE(parsed.gauges.empty());
  EXPECT_TRUE(parsed.histograms.empty());
}

TEST(HistorySampleTest, ParseRejectsMalformedLines) {
  std::vector<std::string> cases = {
      "",
      "{}",
      "not json",
      "{\"v\":2,\"unix_ms\":1}",          // unsupported version
      "{\"unix_ms\":1,\"v\":1}",          // header order is strict
      FullSample().ToJson().substr(0, 40),  // truncated
      FullSample().ToJson() + "x",          // trailing content
  };
  for (const std::string& line : cases) {
    HistorySample parsed;
    std::string error;
    EXPECT_FALSE(ParseHistorySample(line, &parsed, &error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(MetricsHistoryTest, FirstRecordIsZeroDeltaBaseline) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Inc(10);
  reg.GetGauge("g")->Set(99);
  MetricsHistory history;
  history.Record(reg.Snapshot(), 1000);
  std::vector<HistorySample> samples = history.Samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].unix_ms, 1000u);
  EXPECT_DOUBLE_EQ(samples[0].seconds, 0.0);
  // The pre-existing counter value is the baseline, not a delta.
  EXPECT_TRUE(samples[0].counters.empty());
  // Gauges are end-of-interval values, so the baseline carries them.
  ASSERT_EQ(samples[0].gauges.count("g"), 1u);
  EXPECT_EQ(samples[0].gauges.at("g"), 99);
  EXPECT_EQ(history.DeltaOver("c", 60000, 1000), 0u);
}

TEST(MetricsHistoryTest, RecordsDeltasBetweenSnapshots) {
  MetricsRegistry reg;
  MetricsHistory history;
  history.Record(reg.Snapshot(), 1000);

  reg.GetCounter("c")->Inc(5);
  reg.GetGauge("g")->Set(-3);
  Histogram* h = reg.GetHistogram("h");
  h->Observe(0);    // bucket le=1
  h->Observe(3);    // bucket le=4
  h->Observe(3);
  history.Record(reg.Snapshot(), 2000);

  reg.GetCounter("c")->Inc(2);
  h->Observe(100);  // bucket le=128
  history.Record(reg.Snapshot(), 3500);

  std::vector<HistorySample> samples = history.Samples();
  ASSERT_EQ(samples.size(), 3u);
  const HistorySample& s1 = samples[1];
  EXPECT_DOUBLE_EQ(s1.seconds, 1.0);
  EXPECT_EQ(s1.counters.at("c"), 5u);
  EXPECT_EQ(s1.gauges.at("g"), -3);
  std::vector<std::pair<uint64_t, uint64_t>> want1 = {{1, 1}, {4, 2}};
  EXPECT_EQ(s1.histograms.at("h"), want1);

  const HistorySample& s2 = samples[2];
  EXPECT_DOUBLE_EQ(s2.seconds, 1.5);
  EXPECT_EQ(s2.counters.at("c"), 2u);
  std::vector<std::pair<uint64_t, uint64_t>> want2 = {{128, 1}};
  EXPECT_EQ(s2.histograms.at("h"), want2);
}

TEST(MetricsHistoryTest, ClampsToZeroAcrossRegistryReset) {
  MetricsRegistry reg;
  MetricsHistory history;
  history.Record(reg.Snapshot(), 1000);
  reg.GetCounter("c")->Inc(10);
  reg.GetHistogram("h")->Observe(3);
  history.Record(reg.Snapshot(), 2000);

  // Reset mid-stream: the counter goes 10 -> 3, which must clamp to a zero
  // delta instead of wrapping to ~2^64.
  reg.Reset();
  reg.GetCounter("c")->Inc(3);
  history.Record(reg.Snapshot(), 3000);

  std::vector<HistorySample> samples = history.Samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_TRUE(samples[2].counters.empty());
  EXPECT_TRUE(samples[2].histograms.empty());
  EXPECT_EQ(history.DeltaOver("c", 60000, 3000), 10u);

  // After the clamped sample, diffing resumes from the reset baseline.
  reg.GetCounter("c")->Inc(4);
  history.Record(reg.Snapshot(), 4000);
  EXPECT_EQ(history.Samples()[3].counters.at("c"), 4u);
}

TEST(MetricsHistoryTest, WindowQueriesHonorTheCutoff) {
  MetricsRegistry reg;
  MetricsHistory history;
  Counter* c = reg.GetCounter("c");
  Gauge* g = reg.GetGauge("g");
  history.Record(reg.Snapshot(), 1000);
  c->Inc(10);
  g->Set(1);
  history.Record(reg.Snapshot(), 2000);
  c->Inc(20);
  g->Set(2);
  history.Record(reg.Snapshot(), 3000);
  c->Inc(30);
  g->Set(3);
  history.Record(reg.Snapshot(), 4000);

  // Window covering only the last two samples (cutoff at 2500).
  EXPECT_EQ(history.DeltaOver("c", 1500, 4000), 50u);
  EXPECT_DOUBLE_EQ(history.RateOver("c", 1500, 4000), 25.0);
  // Window covering everything: 60 increments over 3 covered seconds.
  EXPECT_EQ(history.DeltaOver("c", 60000, 4000), 60u);
  EXPECT_DOUBLE_EQ(history.RateOver("c", 60000, 4000), 20.0);
  // Empty window.
  EXPECT_EQ(history.DeltaOver("c", 500, 10000), 0u);
  EXPECT_DOUBLE_EQ(history.RateOver("c", 500, 10000), 0.0);
  // Unknown counter.
  EXPECT_EQ(history.DeltaOver("nope", 60000, 4000), 0u);

  int64_t v = 0;
  ASSERT_TRUE(history.LatestGauge("g", &v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(history.LatestGauge("nope", &v));
}

TEST(MetricsHistoryTest, PercentileAndObservationsOverWindow) {
  MetricsRegistry reg;
  MetricsHistory history;
  Histogram* h = reg.GetHistogram("h");
  history.Record(reg.Snapshot(), 1000);
  h->Observe(100);
  h->Observe(100);
  history.Record(reg.Snapshot(), 2000);
  h->Observe(1000);
  h->Observe(1000);
  history.Record(reg.Snapshot(), 3000);

  EXPECT_EQ(history.ObservationsOver("h", 60000, 3000), 4u);
  // A 1s window at t=3000 cuts off at 2000 exclusive: only the last
  // sample's observations (both ~1000, bucket (512, 1024]).
  EXPECT_EQ(history.ObservationsOver("h", 1000, 3000), 2u);
  double p50_recent = history.PercentileOver("h", 0.5, 1000, 3000);
  EXPECT_GT(p50_recent, 512.0);
  EXPECT_LE(p50_recent, 1024.0);
  // Over the full window the lower half sits in the (64, 128] bucket.
  double p25_all = history.PercentileOver("h", 0.25, 60000, 3000);
  EXPECT_LE(p25_all, 128.0);
  // No observations in the window.
  EXPECT_DOUBLE_EQ(history.PercentileOver("h", 0.5, 500, 10000), 0.0);
}

TEST(MetricsHistoryTest, FoldsFineSamplesIntoCoarseBuckets) {
  HistoryOptions options;
  options.fine_retention_ms = 2000;
  options.coarse_bucket_ms = 2000;
  options.coarse_retention_ms = 60000;
  MetricsHistory history(options);
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  Gauge* g = reg.GetGauge("g");
  uint64_t t = 1000;
  history.Record(reg.Snapshot(), t);
  for (int i = 0; i < 10; ++i) {
    t += 1000;
    c->Inc(1);
    g->Set(static_cast<int64_t>(i));
    history.Record(reg.Snapshot(), t);
  }
  // Old fine samples were folded rather than dropped.
  EXPECT_GT(history.coarse_size(), 0u);
  EXPECT_LT(history.fine_size(), 11u);
  // Nothing was lost in the fold: the total delta is still every increment.
  EXPECT_EQ(history.DeltaOver("c", 60000, t), 10u);
  int64_t v = 0;
  ASSERT_TRUE(history.LatestGauge("g", &v));
  EXPECT_EQ(v, 9);

  std::vector<HistorySample> samples = history.Samples();
  ASSERT_FALSE(samples.empty());
  // Samples come back oldest first, coarse before fine, and the coarse ones
  // are flagged and span more than one tick.
  EXPECT_TRUE(samples.front().coarse);
  EXPECT_FALSE(samples.back().coarse);
  EXPECT_GT(samples.front().seconds, 1.0);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].unix_ms, samples[i - 1].unix_ms);
  }
}

TEST(MetricsHistoryTest, CoarseBucketsExpire) {
  HistoryOptions options;
  options.fine_retention_ms = 1000;
  options.coarse_bucket_ms = 1000;
  options.coarse_retention_ms = 3000;
  MetricsHistory history(options);
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  uint64_t t = 1000;
  history.Record(reg.Snapshot(), t);
  for (int i = 0; i < 60; ++i) {
    t += 1000;
    c->Inc(1);
    history.Record(reg.Snapshot(), t);
  }
  // Retention bounds the ring regardless of how long the engine runs.
  std::vector<HistorySample> samples = history.Samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_GE(samples.front().unix_ms + options.coarse_retention_ms +
                options.fine_retention_ms + options.coarse_bucket_ms,
            t);
  EXPECT_LT(history.DeltaOver("c", 600000, t), 60u);
  EXPECT_EQ(history.records(), 61u);
}

TEST(MetricsHistoryTest, PersistsJsonlEveryNRecordsAndOnDemand) {
  std::string path = ::testing::TempDir() + "/history_test_ring.jsonl";
  std::remove(path.c_str());
  HistoryOptions options;
  options.jsonl_path = path;
  options.persist_every = 2;
  MetricsHistory history(options);
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  history.Record(reg.Snapshot(), 1000);
  c->Inc(1);
  history.Record(reg.Snapshot(), 2000);  // 2nd record: rewrites the file
  c->Inc(2);
  history.Record(reg.Snapshot(), 3000);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::vector<HistorySample> from_disk;
  std::string line;
  while (std::getline(in, line)) {
    HistorySample s;
    std::string error;
    ASSERT_TRUE(ParseHistorySample(line, &s, &error)) << error;
    from_disk.push_back(s);
  }
  // persist_every=2: the file holds the ring as of the second record.
  ASSERT_EQ(from_disk.size(), 2u);
  EXPECT_EQ(from_disk[1].counters.at("c"), 1u);

  // Explicit WriteFile flushes the third sample too.
  ASSERT_TRUE(history.WriteFile());
  std::ifstream again(path);
  size_t lines = 0;
  while (std::getline(again, line)) ++lines;
  EXPECT_EQ(lines, 3u);
  std::remove(path.c_str());
}

TEST(MetricsHistoryTest, WriteFileWithoutPathFails) {
  MetricsHistory history;
  EXPECT_FALSE(history.WriteFile());
  EXPECT_FALSE(history.WriteFile("/nonexistent-dir-zzz/ring.jsonl"));
}

}  // namespace
}  // namespace rdfql
