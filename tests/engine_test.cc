#include "core/engine.h"

#include <gtest/gtest.h>

#include "workload/scenarios.h"

namespace rdfql {
namespace {

TEST(EngineTest, LoadAndQuery) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a knows b .\nb knows c .").ok());
  Result<MappingSet> r = engine.Query("g", "(?x knows ?y)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
}

TEST(EngineTest, LoadAppendsToExistingGraph) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .").ok());
  ASSERT_TRUE(engine.LoadGraphText("g", "c p d .").ok());
  Result<const Graph*> g = engine.GetGraph("g");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ((*g)->size(), 2u);
}

TEST(EngineTest, UnknownGraphIsNotFound) {
  Engine engine;
  Result<MappingSet> r = engine.Query("missing", "(?x p ?y)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, ParseErrorsPropagate) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .").ok());
  EXPECT_FALSE(engine.Query("g", "(?x p").ok());
}

TEST(EngineTest, PutGraphReplaces) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .").ok());
  Graph replacement;
  engine.PutGraph("g", replacement);
  Result<const Graph*> g = engine.GetGraph("g");
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE((*g)->empty());
}

TEST(EngineTest, ClassifyWellDesignedOpt) {
  Engine engine;
  Result<PatternPtr> p = engine.Parse(scenarios::Example31Query());
  ASSERT_TRUE(p.ok());
  PatternReport report = engine.Classify(p.value());
  EXPECT_EQ(report.fragment, "SPARQL[O]");
  EXPECT_TRUE(report.well_designed);
  EXPECT_TRUE(report.union_well_designed);
  EXPECT_FALSE(report.simple_pattern);
  EXPECT_TRUE(report.syntactically_subsumption_free);
  EXPECT_TRUE(report.looks_weakly_monotone);
  EXPECT_FALSE(report.looks_monotone);
  EXPECT_TRUE(report.looks_subsumption_free);
}

TEST(EngineTest, ClassifyExample33) {
  Engine engine;
  Result<PatternPtr> p = engine.Parse(scenarios::Example33Query());
  ASSERT_TRUE(p.ok());
  PatternReport report = engine.Classify(p.value());
  EXPECT_FALSE(report.well_designed);
  EXPECT_FALSE(report.looks_weakly_monotone);
}

TEST(EngineTest, ClassifySimplePattern) {
  Engine engine;
  Result<PatternPtr> p =
      engine.Parse("NS((?x a ?y) UNION ((?x a ?y) AND (?y b ?z)))");
  ASSERT_TRUE(p.ok());
  PatternReport report = engine.Classify(p.value());
  EXPECT_TRUE(report.simple_pattern);
  EXPECT_TRUE(report.ns_pattern);
  EXPECT_TRUE(report.looks_weakly_monotone);
  EXPECT_TRUE(report.looks_subsumption_free);
}

TEST(EngineTest, AskQueries) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .").ok());
  Result<bool> yes = engine.Ask("g", "(?x p ?y)");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  Result<bool> no = engine.Ask("g", "(?x q ?y)");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
  EXPECT_FALSE(engine.Ask("missing", "(?x p ?y)").ok());
}

TEST(EngineTest, CsvAndJsonSerialization) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .\nc p d .").ok());
  Result<std::string> csv = engine.QueryCsv("g", "(?x p ?y)");
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(*csv, "x,y\na,b\nc,d\n");
  Result<std::string> json = engine.QueryJson("g", "(?x p ?y)");
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"vars\":[\"x\",\"y\"]"), std::string::npos);
  EXPECT_NE(json->find("\"value\":\"b\""), std::string::npos);
}

TEST(EngineTest, ConstructQueryEndToEnd) {
  Engine engine;
  Graph g = scenarios::ProfessorsGraph(engine.dict());
  engine.PutGraph("profs", std::move(g));
  Result<ConstructQuery> q =
      engine.ParseConstructQuery(scenarios::Example61ConstructQuery());
  ASSERT_TRUE(q.ok());
  Result<const Graph*> input = engine.GetGraph("profs");
  ASSERT_TRUE(input.ok());
  EXPECT_EQ(q->Answer(**input).size(), 4u);
}

}  // namespace
}  // namespace rdfql
