#include "eval/explain.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "optimize/optimizer.h"
#include "parser/parser.h"
#include "rdf/dot.h"
#include "rdf/ntriples.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Graph Load(const char* text) {
    Graph g;
    Status st = ParseNTriples(text, &dict_, &g);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return g;
  }
  Dictionary dict_;
};

TEST_F(ExplainTest, RecordsPerOperatorCardinalities) {
  Graph g = Load("a p b .\nc p d .\nb q e .");
  Explanation e =
      ExplainEval(g, Parse("(?x p ?y) AND (?y q ?z)"), dict_);
  EXPECT_EQ(e.result.size(), 1u);
  ASSERT_TRUE(e.plan != nullptr);
  EXPECT_EQ(e.plan->label, "AND");
  EXPECT_EQ(e.plan->cardinality, 1u);
  ASSERT_EQ(e.plan->children.size(), 2u);
  EXPECT_EQ(e.plan->children[0]->cardinality, 2u);  // (?x p ?y)
  EXPECT_EQ(e.plan->children[1]->cardinality, 1u);  // (?y q ?z)
  EXPECT_EQ(e.TotalIntermediate(), 4u);
  std::string text = e.ToString();
  EXPECT_NE(text.find("AND [1]"), std::string::npos);
  EXPECT_NE(text.find("TRIPLE"), std::string::npos);
}

TEST_F(ExplainTest, ResultMatchesEvaluatorOnRandomPatterns) {
  Rng rng(42);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.allow_minus = spec.allow_ns = true;
  spec.max_depth = 3;
  for (int i = 0; i < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "ex");
    Explanation e = ExplainEval(g, p, dict_);
    EXPECT_EQ(e.result, EvalPattern(g, p));
    EXPECT_GE(e.TotalIntermediate(), e.result.size());
  }
}

// The optimizer should not increase the intermediate work on its target
// workload (a filter that can be pushed below a join).
TEST_F(ExplainTest, OptimizerReducesIntermediateWork) {
  Graph g;
  for (int i = 0; i < 50; ++i) {
    g.Insert(dict_.InternIri("s" + std::to_string(i)), dict_.InternIri("p"),
             dict_.InternIri("o" + std::to_string(i)));
    g.Insert(dict_.InternIri("s" + std::to_string(i)), dict_.InternIri("q"),
             dict_.InternIri("t"));
  }
  PatternPtr raw = Parse("((?x p ?y) AND (?x q ?z)) FILTER ?x = s0");
  GraphStats stats = GraphStats::Collect(g);
  Optimizer opt(&stats);
  PatternPtr optimized = opt.Optimize(raw);

  Explanation before = ExplainEval(g, raw, dict_);
  Explanation after = ExplainEval(g, optimized, dict_);
  EXPECT_EQ(before.result, after.result);
  EXPECT_LT(after.TotalIntermediate(), before.TotalIntermediate());
}

TEST_F(ExplainTest, DotExportShapesTheFigure) {
  Graph g = Load("Juan was_born_in Chile .\nJuan email juan@puc.cl .");
  std::string dot = WriteDot(g, dict_);
  EXPECT_NE(dot.find("digraph rdf {"), std::string::npos);
  EXPECT_NE(dot.find("\"was_born_in\""), std::string::npos);
  EXPECT_NE(dot.find("\"Juan\""), std::string::npos);
  // Three distinct nodes (Juan, Chile, juan@puc.cl), two edges.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '>'), 2);
}

}  // namespace
}  // namespace rdfql
