#include "obs/tracer.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "eval/evaluator.h"
#include "eval/explain.h"
#include "eval/wd_evaluator.h"
#include "parser/parser.h"
#include "rdf/ntriples.h"

namespace rdfql {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Graph Load(const char* text) {
    Graph g;
    Status st = ParseNTriples(text, &dict_, &g);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return g;
  }
  Dictionary dict_;
};

TEST_F(TracerTest, SpansNestAndCarryCounters) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "AND");
    {
      ScopedSpan inner(&tracer, "TRIPLE", "(?x p ?y)");
      inner.AddCounter("index_probes", 3);
    }
    outer.AddCounter("join_probes", 7);
    outer.AddCounter("join_probes", 2);
    outer.AddCounter("ignored", 0);  // zero deltas are dropped
  }
  const TraceSpan* root = tracer.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->op, "AND");
  EXPECT_EQ(root->GetCounter("join_probes"), 9u);
  EXPECT_EQ(root->GetCounter("ignored"), 0u);
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_EQ(root->children[0]->op, "TRIPLE");
  EXPECT_EQ(root->children[0]->detail, "(?x p ?y)");
  EXPECT_EQ(root->children[0]->GetCounter("index_probes"), 3u);
  // The child's interval is contained in the parent's.
  EXPECT_GE(root->children[0]->start_ns, root->start_ns);
  EXPECT_LE(root->children[0]->start_ns + root->children[0]->duration_ns,
            root->start_ns + root->duration_ns);
}

TEST_F(TracerTest, NullTracerIsANoOp) {
  ScopedSpan span(nullptr, "AND");
  EXPECT_EQ(span.span(), nullptr);
  span.AddCounter("join_probes", 5);  // must not crash
}

TEST_F(TracerTest, OpCountersSinksNest) {
  EXPECT_EQ(ScopedOpCounters::Current(), nullptr);
  OpCounters outer;
  OpCounters inner;
  {
    ScopedOpCounters install_outer(&outer);
    ScopedOpCounters::Current()->join_probes += 1;
    {
      ScopedOpCounters install_inner(&inner);
      ScopedOpCounters::Current()->join_probes += 10;
    }
    ScopedOpCounters::Current()->join_probes += 1;
  }
  EXPECT_EQ(ScopedOpCounters::Current(), nullptr);
  EXPECT_EQ(outer.join_probes, 2u);   // inner work not double counted
  EXPECT_EQ(inner.join_probes, 10u);
}

TEST_F(TracerTest, SpanTreeMirrorsPatternTree) {
  Graph g = Load("a p b .\nc p d .\nb q e .");
  PatternPtr p = Parse("((?x p ?y) AND (?y q ?z)) FILTER (bound(?x))");
  Tracer tracer;
  EvalOptions options;
  options.tracer = &tracer;
  options.trace_dict = &dict_;
  EvalPattern(g, p, options);
  const TraceSpan* root = tracer.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->op, "FILTER");
  ASSERT_EQ(root->children.size(), 1u);
  const TraceSpan* and_span = root->children[0].get();
  EXPECT_EQ(and_span->op, "AND");
  ASSERT_EQ(and_span->children.size(), 2u);
  EXPECT_EQ(and_span->children[0]->op, "TRIPLE");
  EXPECT_EQ(and_span->children[0]->detail, "(?x p ?y)");
  EXPECT_EQ(and_span->children[1]->op, "TRIPLE");
  // Work lands on the operator that did it, not on its children:
  // the AND probes mapping pairs, the triples probe the index.
  EXPECT_GT(and_span->GetCounter("join_probes"), 0u);
  EXPECT_EQ(and_span->GetCounter("index_probes"), 0u);
  EXPECT_GT(and_span->children[0]->GetCounter("index_probes"), 0u);
  EXPECT_EQ(and_span->children[0]->GetCounter("join_probes"), 0u);
  EXPECT_EQ(and_span->GetCounter("mappings_out"), 1u);
  EXPECT_EQ(and_span->children[0]->GetCounter("mappings_out"), 2u);
  EXPECT_GT(root->GetCounter("filter_evals"), 0u);
}

TEST_F(TracerTest, TreeStringAndChromeJson) {
  Graph g = Load("a p b .\nb q c .");
  Tracer tracer;
  EvalOptions options;
  options.tracer = &tracer;
  options.trace_dict = &dict_;
  EvalPattern(g, Parse("(?x p ?y) AND (?y q ?z)"), options);
  std::string tree = tracer.ToTreeString();
  EXPECT_NE(tree.find("AND"), std::string::npos);
  EXPECT_NE(tree.find("TRIPLE (?x p ?y)"), std::string::npos);
  EXPECT_NE(tree.find("t="), std::string::npos);
  std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"AND\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// The ISSUE's acceptance criterion: EXPLAIN ANALYZE on a join shows
// per-node wall time and a nonzero join_probes on the AND node.
TEST_F(TracerTest, ExplainAnalyzeShowsTimeAndJoinWork) {
  Graph g = Load("a p b .\nc p d .\nb q e .");
  Explanation e = ExplainEval(g, Parse("(?x p ?y) AND (?y q ?z)"), dict_);
  ASSERT_TRUE(e.plan != nullptr);
  EXPECT_EQ(e.plan->label, "AND");
  EXPECT_GT(e.plan->GetCounter("join_probes"), 0u);
  std::string text = e.ToString();
  EXPECT_NE(text.find("AND [1]"), std::string::npos);
  EXPECT_NE(text.find("t="), std::string::npos);
  EXPECT_NE(text.find("join_probes="), std::string::npos);
}

TEST_F(TracerTest, EngineQueryExplainedReportsPhases) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .\nb q c .").ok());
  Result<QueryExplanation> r =
      engine.QueryExplained("g", "(?x p ?y) AND (?y q ?z)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().result().size(), 1u);
  EXPECT_GT(r.value().eval_ns, 0u);
  std::string text = r.value().ToString();
  EXPECT_NE(text.find("parse:"), std::string::npos);
  EXPECT_NE(text.find("eval:"), std::string::npos);
  EXPECT_NE(text.find("AND [1]"), std::string::npos);
}

TEST_F(TracerTest, WdEvaluatorTracesAndCounts) {
  Graph g = Load("a p b .\nb q c .");
  PatternPtr p = Parse("(?x p ?y) OPT (?y q ?z)");
  Tracer tracer;
  MetricsRegistry metrics;
  Result<MappingSet> r = EvalWellDesignedTopDown(g, p, &tracer, &metrics);
  ASSERT_TRUE(r.ok());
  const TraceSpan* root = tracer.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->op, "WD-TOPDOWN");
  EXPECT_GT(root->GetCounter("index_probes"), 0u);
  RegistrySnapshot snap = metrics.Snapshot();
  EXPECT_GT(snap.counters.at("wd_eval.index_probes"), 0u);
}

}  // namespace
}  // namespace rdfql
