#include "transform/wd_to_simple.h"

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "analysis/well_designed.h"
#include "eval/evaluator.h"
#include "parser/parser.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"
#include "workload/scenarios.h"

namespace rdfql {
namespace {

class WdToSimpleTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Dictionary dict_;
};

TEST_F(WdToSimpleTest, RejectsNonWellDesigned) {
  Result<PatternPtr> r =
      WellDesignedToSimple(Parse(scenarios::Example33Query()));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WdToSimpleTest, ProducesSimplePattern) {
  Result<PatternPtr> r =
      WellDesignedToSimple(Parse("(?x a ?y) OPT (?y b ?z)"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(IsSimplePattern(r.value()));
}

TEST_F(WdToSimpleTest, TreeStructure) {
  Result<std::unique_ptr<WdTreeNode>> tree = BuildWdTree(
      Parse("(((?x a ?y) AND (?y b ?z)) OPT (?z c ?w)) OPT (?x d ?v)"));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->triples.size(), 2u);
  EXPECT_EQ((*tree)->children.size(), 2u);
}

TEST_F(WdToSimpleTest, SubtreeCountIsExponentialInChildren) {
  // Root with two independent OPT children: 4 subtrees.
  Result<PatternPtr> r = WellDesignedToAufUnion(
      Parse("((?x a ?y) OPT (?x b ?z)) OPT (?x c ?w)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(TopLevelDisjuncts(r.value()).size(), 4u);
}

TEST_F(WdToSimpleTest, Example31Equivalence) {
  PatternPtr p = Parse(scenarios::Example31Query());
  Result<PatternPtr> simple = WellDesignedToSimple(p);
  ASSERT_TRUE(simple.ok());
  Graph g1 = scenarios::ChileGraphG1(&dict_);
  Graph g2 = scenarios::ChileGraphG2(&dict_);
  EXPECT_EQ(EvalPattern(g1, p), EvalPattern(g1, simple.value()));
  EXPECT_EQ(EvalPattern(g2, p), EvalPattern(g2, simple.value()));
}

// Proposition 5.6 (constructive direction): P ≡ NS(∪ subtree CQs) for
// well-designed P, verified over random patterns and graphs.
TEST_F(WdToSimpleTest, EquivalenceOnRandomWellDesignedPatterns) {
  Rng rng(56);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.allow_filter = true;
  spec.max_depth = 3;
  int tested = 0;
  for (int i = 0; i < 400 && tested < 50; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    if (!IsWellDesigned(p)) continue;
    ++tested;
    Result<PatternPtr> simple = WellDesignedToSimple(p);
    ASSERT_TRUE(simple.ok()) << simple.status().ToString();
    for (int trial = 0; trial < 5; ++trial) {
      Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "i");
      EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, simple.value()));
    }
  }
  EXPECT_GE(tested, 20);
}

// Proposition A.1: every well-designed pattern is equivalent to one in
// OPT normal form (left-deep OPT chain with an OPT-free head).
TEST_F(WdToSimpleTest, OptNormalFormEquivalence) {
  Rng rng(101);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.allow_filter = true;
  spec.max_depth = 4;
  int tested = 0;
  for (int i = 0; i < 300 && tested < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    if (!IsWellDesigned(p)) continue;
    ++tested;
    Result<PatternPtr> nf = ToOptNormalForm(p);
    ASSERT_TRUE(nf.ok());
    // The head of the OPT chain is OPT-free.
    const Pattern* head = nf.value().get();
    while (head->kind() == PatternKind::kOpt) head = head->left().get();
    EXPECT_FALSE(head->Uses(PatternKind::kOpt));
    // The normal form is still well designed and equivalent.
    EXPECT_TRUE(IsWellDesigned(nf.value()));
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "nf");
      EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, nf.value()));
    }
  }
  EXPECT_GE(tested, 15);
}

TEST_F(WdToSimpleTest, TreeRoundTrip) {
  PatternPtr p = Parse(
      "(((?x a ?y) AND (?y b ?z)) OPT (?z c ?w)) OPT (?x d ?v)");
  Result<std::unique_ptr<WdTreeNode>> tree = BuildWdTree(p);
  ASSERT_TRUE(tree.ok());
  PatternPtr rebuilt = WdTreeToPattern(**tree);
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "rt");
    EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, rebuilt));
  }
}

TEST_F(WdToSimpleTest, InnerUnionIsAuf) {
  Result<PatternPtr> r = WellDesignedToAufUnion(
      Parse("((?x a ?y) FILTER bound(?x)) OPT (?y b ?z)"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(InFragment(r.value(), "AUF"));
}

TEST_F(WdToSimpleTest, EnforcesSubtreeLimit) {
  Result<PatternPtr> r = WellDesignedToSimple(
      Parse("(((?x a ?y) OPT (?x b ?z)) OPT (?x c ?w)) OPT (?x d ?v)"),
      /*max_subtrees=*/3);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace rdfql
