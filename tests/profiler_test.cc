#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "util/profile_state.h"
#include "util/thread_pool.h"
#include "util/timed_lock.h"
#include "util/random.h"
#include "workload/graph_generator.h"

namespace rdfql {
namespace {

// ---------------------------------------------------------------------------
// Tag-stack primitives
// ---------------------------------------------------------------------------

TEST(ProfileSlotTest, PushPopSnapshot) {
  ProfileThreadSlot slot;
  const char* stack[ProfileThreadSlot::kMaxDepth];
  uint32_t raw = 0;
  EXPECT_EQ(slot.SnapshotStack(stack, ProfileThreadSlot::kMaxDepth, &raw), 0u);
  slot.Push("a");
  slot.Push("b");
  ASSERT_EQ(slot.SnapshotStack(stack, ProfileThreadSlot::kMaxDepth, &raw), 2u);
  EXPECT_EQ(raw, 2u);
  EXPECT_STREQ(stack[0], "a");
  EXPECT_STREQ(stack[1], "b");
  slot.Pop();
  ASSERT_EQ(slot.SnapshotStack(stack, ProfileThreadSlot::kMaxDepth, &raw), 1u);
  EXPECT_STREQ(stack[0], "a");
  slot.Pop();
  EXPECT_EQ(slot.SnapshotStack(stack, ProfileThreadSlot::kMaxDepth, &raw), 0u);
}

TEST(ProfileSlotTest, OverflowCountsDepthAndStaysBalanced) {
  ProfileThreadSlot slot;
  for (size_t i = 0; i < ProfileThreadSlot::kMaxDepth + 5; ++i) {
    slot.Push("deep");
  }
  const char* stack[ProfileThreadSlot::kMaxDepth];
  uint32_t raw = 0;
  EXPECT_EQ(slot.SnapshotStack(stack, ProfileThreadSlot::kMaxDepth, &raw),
            ProfileThreadSlot::kMaxDepth);
  EXPECT_EQ(raw, ProfileThreadSlot::kMaxDepth + 5);
  for (size_t i = 0; i < ProfileThreadSlot::kMaxDepth + 5; ++i) {
    slot.Pop();
  }
  EXPECT_EQ(slot.SnapshotStack(stack, ProfileThreadSlot::kMaxDepth, &raw), 0u);
}

TEST(ProfileSlotTest, StateTransitions) {
  ProfileThreadSlot slot;
  EXPECT_EQ(slot.state(), ProfileThreadState::kIdle);
  slot.SetState(ProfileThreadState::kLockWait);
  EXPECT_EQ(slot.state(), ProfileThreadState::kLockWait);
}

TEST(ProfileStateNameTest, AllStatesNamed) {
  EXPECT_STREQ(ProfileThreadStateName(ProfileThreadState::kIdle), "idle");
  EXPECT_STREQ(ProfileThreadStateName(ProfileThreadState::kRunning),
               "running");
  EXPECT_STREQ(ProfileThreadStateName(ProfileThreadState::kPoolQueueWait),
               "pool_queue_wait");
  EXPECT_STREQ(ProfileThreadStateName(ProfileThreadState::kLockWait),
               "lock_wait");
}

TEST(InternProfileTagTest, CanonicalizesAndSanitizes) {
  const char* a = InternProfileTag("JoinHash");
  const char* b = InternProfileTag(std::string("Join") + "Hash");
  EXPECT_EQ(a, b);  // same canonical pointer
  EXPECT_STREQ(InternProfileTag("has space;and semi\nand newline"),
               "has_space_and_semi_and_newline");
  EXPECT_STREQ(InternProfileTag(""), "?");
}

TEST(ProfileFrameTest, NoOpWhenDisabledOrNull) {
  ASSERT_FALSE(ProfilingEnabled());
  ProfileThreadSlot* slot = CurrentProfileSlot();
  const char* stack[ProfileThreadSlot::kMaxDepth];
  uint32_t raw = 0;
  {
    ProfileFrame off("tag");
    ProfileFrame null_tag(nullptr);
    EXPECT_EQ(slot->SnapshotStack(stack, ProfileThreadSlot::kMaxDepth, &raw),
              0u);
  }
  SetProfilingEnabled(true);
  {
    ProfileFrame on("tag");
    EXPECT_EQ(slot->SnapshotStack(stack, ProfileThreadSlot::kMaxDepth, &raw),
              1u);
  }
  SetProfilingEnabled(false);
  EXPECT_EQ(slot->SnapshotStack(stack, ProfileThreadSlot::kMaxDepth, &raw),
            0u);
}

TEST(ProfileRegistryTest, ThreadsRegisterAndUnregister) {
  size_t before = ProfileThreadRegistry::Instance().size();
  std::atomic<bool> go{false};
  std::thread t([&] {
    CurrentProfileSlot();
    while (!go.load()) std::this_thread::yield();
  });
  while (ProfileThreadRegistry::Instance().size() != before + 1) {
    std::this_thread::yield();
  }
  go.store(true);
  t.join();
  // Unregistration happens at thread exit (thread_local destructor).
  EXPECT_EQ(ProfileThreadRegistry::Instance().size(), before);
}

// ---------------------------------------------------------------------------
// WaitStats and timed locks
// ---------------------------------------------------------------------------

TEST(WaitStatsTest, BucketsMatchHistogramBoundaries) {
  WaitStats stats;
  stats.RecordWait(0);     // bucket 0
  stats.RecordWait(1);     // [1,2) -> bucket 1
  stats.RecordWait(1024);  // [1024,2048) -> bucket 11
  stats.RecordWait(1500);
  WaitStats::Totals t;
  stats.AddTo(&t);
  EXPECT_EQ(t.count, 4u);
  EXPECT_EQ(t.sum_ns, 0u + 1 + 1024 + 1500);
  EXPECT_EQ(t.contended, 4u);
  EXPECT_EQ(t.buckets[0], 1u);
  EXPECT_EQ(t.buckets[1], 1u);
  EXPECT_EQ(t.buckets[11], 2u);
}

TEST(TimedLockTest, UncontendedAcquisitionRecordsNothing) {
  std::mutex mu;
  WaitStats stats;
  { TimedExclusiveLock<std::mutex> lock(mu, &stats, "Test::lock"); }
  WaitStats::Totals t;
  stats.AddTo(&t);
  EXPECT_EQ(t.contended, 0u);
  EXPECT_EQ(t.count, 0u);
}

TEST(TimedLockTest, ContendedAcquisitionIsCountedAndTimed) {
  std::mutex mu;
  WaitStats stats;
  std::atomic<bool> held{false};
  std::thread holder([&] {
    std::lock_guard<std::mutex> lock(mu);
    held.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  while (!held.load()) std::this_thread::yield();
  { TimedExclusiveLock<std::mutex> lock(mu, &stats, "Test::lock"); }
  holder.join();
  WaitStats::Totals t;
  stats.AddTo(&t);
  EXPECT_EQ(t.contended, 1u);
  EXPECT_GT(t.sum_ns, 0u);
}

TEST(TimedLockTest, SharedLockContendsAgainstExclusive) {
  std::shared_mutex mu;
  WaitStats stats;
  std::atomic<bool> held{false};
  std::thread holder([&] {
    std::unique_lock<std::shared_mutex> lock(mu);
    held.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  while (!held.load()) std::this_thread::yield();
  { TimedSharedLock<std::shared_mutex> lock(mu, &stats, "Test::lock"); }
  holder.join();
  WaitStats::Totals t;
  stats.AddTo(&t);
  EXPECT_EQ(t.contended, 1u);
}

// ---------------------------------------------------------------------------
// ThreadPool instrumentation
// ---------------------------------------------------------------------------

TEST(PoolProfilingTest, TasksTotalAndDelayStatsAdvance) {
  ThreadPool pool(2);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(16, [&](size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 16u * 17 / 2);
  EXPECT_GE(pool.tasks_total(), 16u);
  WaitStats::Totals delay, run;
  pool.queue_delay_stats().AddTo(&delay);
  pool.run_time_stats().AddTo(&run);
  // Every executed task records one queue-delay and one run-time sample
  // (the caller may inline some tasks; those record too).
  EXPECT_GE(delay.count, 1u);
  EXPECT_EQ(delay.count, run.count);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

// ---------------------------------------------------------------------------
// Profiler aggregation
// ---------------------------------------------------------------------------

TEST(ProfilerTest, ManualTicksFoldStacks) {
  Profiler profiler(ProfilerOptions{0});  // hz=0: manual ticks only
  ASSERT_TRUE(profiler.Start());
  {
    ProfileFrame a("Engine::Query");
    ProfileFrame b("Eval");
    ProfileFrame c("AND");
    profiler.TickNow();
    profiler.TickNow();
  }
  profiler.Stop();
  std::string folded = profiler.ToFolded();
  EXPECT_NE(folded.find("Engine::Query;Eval;AND 2"), std::string::npos)
      << folded;
  EXPECT_EQ(profiler.ticks(), 2u);
  EXPECT_GE(profiler.samples(), 2u);
}

TEST(ProfilerTest, SelfAndTotalAttribution) {
  Profiler profiler(ProfilerOptions{0});
  ASSERT_TRUE(profiler.Start());
  {
    ProfileFrame a("Outer");
    profiler.TickNow();  // lands on Outer
    {
      ProfileFrame b("Inner");
      profiler.TickNow();  // lands on Inner
      profiler.TickNow();
    }
  }
  profiler.Stop();
  std::vector<ProfileTagTotal> tags = profiler.TopTags(10);
  uint64_t outer_self = 0, outer_total = 0, inner_self = 0;
  for (const ProfileTagTotal& t : tags) {
    if (t.tag == "Outer") {
      outer_self = t.self;
      outer_total = t.total;
    }
    if (t.tag == "Inner") inner_self = t.self;
  }
  EXPECT_EQ(outer_self, 1u);
  EXPECT_EQ(inner_self, 2u);
  // Other registered threads may contribute idle samples, but Outer covers
  // exactly the three ticks taken under it.
  EXPECT_EQ(outer_total, 3u);
}

TEST(ProfilerTest, WaitStateBecomesTrailingFrame) {
  Profiler profiler(ProfilerOptions{0});
  ASSERT_TRUE(profiler.Start());
  {
    ProfileFrame a("Eval");
    ProfileStateScope wait(ProfileThreadState::kLockWait);
    profiler.TickNow();
  }
  profiler.Stop();
  std::string folded = profiler.ToFolded();
  EXPECT_NE(folded.find("Eval;lock_wait 1"), std::string::npos) << folded;
}

TEST(ProfilerTest, IdleThreadsSampleAsIdle) {
  CurrentProfileSlot();  // register this thread (run-alone ordering)
  Profiler profiler(ProfilerOptions{0});
  ASSERT_TRUE(profiler.Start());
  profiler.TickNow();  // no frames anywhere on this thread
  profiler.Stop();
  EXPECT_NE(profiler.ToFolded().find("idle"), std::string::npos);
}

TEST(ProfilerTest, FoldedLinesAreWellFormed) {
  Profiler profiler(ProfilerOptions{0});
  ASSERT_TRUE(profiler.Start());
  {
    ProfileFrame a("A");
    profiler.TickNow();
    ProfileFrame b("B");
    profiler.TickNow();
  }
  profiler.Stop();
  std::istringstream in(profiler.ToFolded());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    for (size_t i = space + 1; i < line.size(); ++i) {
      EXPECT_TRUE(line[i] >= '0' && line[i] <= '9') << line;
    }
  }
  EXPECT_GE(lines, 2u);
}

TEST(ProfilerTest, SecondProfilerCannotStartWhileFirstRuns) {
  Profiler first(ProfilerOptions{0});
  ASSERT_TRUE(first.Start());
  Profiler second(ProfilerOptions{0});
  EXPECT_FALSE(second.Start());
  first.Stop();
  EXPECT_TRUE(second.Start());
  second.Stop();
}

TEST(ProfilerTest, StartStopIdempotent) {
  Profiler profiler(ProfilerOptions{0});
  EXPECT_TRUE(profiler.Start());
  EXPECT_TRUE(profiler.Start());
  profiler.Stop();
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_EQ(Profiler::Active(), nullptr);
}

TEST(ProfilerTest, JsonExportContainsTags) {
  Profiler profiler(ProfilerOptions{0});
  ASSERT_TRUE(profiler.Start());
  {
    ProfileFrame a("JsonTag");
    profiler.TickNow();
  }
  profiler.Stop();
  std::string json = profiler.ToJson();
  EXPECT_NE(json.find("\"tags\":["), std::string::npos);
  EXPECT_NE(json.find("\"tag\":\"JsonTag\""), std::string::npos);
  EXPECT_NE(json.find("\"ticks\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

TEST(EngineProfilingTest, EnableDisableAndDump) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .\nb p c .").ok());
  EXPECT_FALSE(engine.profiling());
  EXPECT_TRUE(engine.DumpProfile().empty());
  ASSERT_TRUE(engine.EnableProfiling(0).ok());  // manual ticks
  EXPECT_TRUE(engine.profiling());
  // A second enable on the same engine is rejected while running.
  EXPECT_FALSE(engine.EnableProfiling(97).ok());
  ASSERT_TRUE(engine.Query("g", "(?x p ?y) AND (?y p ?z)").ok());
  engine.profiler()->TickNow();
  engine.DisableProfiling();
  EXPECT_FALSE(engine.profiling());
  // The dump survives disable (the trie outlives the sampling window).
  EXPECT_FALSE(engine.DumpProfile().empty());
}

TEST(EngineProfilingTest, TwoEnginesCannotProfileTogether) {
  Engine a, b;
  ASSERT_TRUE(a.EnableProfiling(0).ok());
  EXPECT_FALSE(b.EnableProfiling(0).ok());
  a.DisableProfiling();
  EXPECT_TRUE(b.EnableProfiling(0).ok());
  b.DisableProfiling();
}

TEST(EngineProfilingTest, QueryFramesLandInFoldedOutput) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .\nb p c .\nc p d .").ok());
  ASSERT_TRUE(engine.EnableProfiling(0).ok());
  // Tick from a worker while the main thread is inside evaluation: drive
  // enough queries that a background sampler at high hz would land there;
  // with manual ticks we instead tick inside an Eval frame via the pool.
  // Simplest deterministic check: push the frames ourselves through a real
  // query path is timing-dependent, so sample a synthetic stack mirroring
  // what Engine::Query pushes.
  {
    ProfileFrame q("Engine::Query");
    ProfileFrame e("Eval");
    ProfileFrame op("AND");
    engine.profiler()->TickNow();
  }
  engine.DisableProfiling();
  std::string folded = engine.DumpProfile();
  EXPECT_NE(folded.find("Engine::Query;Eval;AND 1"), std::string::npos)
      << folded;
}

TEST(EngineProfilingTest, MetricsSnapshotInjectsPoolAndLockSeries) {
  Engine engine;
  engine.EnableMetrics();
  engine.SetDefaultThreads(2);
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .\nb p c .").ok());
  ASSERT_TRUE(engine.Query("g", "(?x p ?y) AND (?y p ?z)").ok());
  RegistrySnapshot snap = engine.MetricsSnapshot();
  // Pool series are present whenever the engine owns a pool — profiling
  // never enabled here.
  EXPECT_TRUE(snap.counters.count("pool.tasks_total") == 1);
  EXPECT_TRUE(snap.gauges.count("pool.queue_depth") == 1);
  EXPECT_TRUE(snap.histograms.count("pool.queue_delay_ns") == 1);
  EXPECT_TRUE(snap.histograms.count("pool.run_ns") == 1);
  EXPECT_TRUE(snap.counters.count("lock.dictionary_contended_total") == 1);
  EXPECT_TRUE(snap.histograms.count("lock.dictionary_wait_ns") == 1);
  EXPECT_TRUE(snap.counters.count("lock.graph_index_contended_total") == 1);
}

// ---------------------------------------------------------------------------
// Bit-identical results with profiling on, across strategies and threads
// ---------------------------------------------------------------------------

class ProfiledIdenticalTest
    : public ::testing::TestWithParam<std::tuple<int, EvalOptions::Join>> {};

TEST_P(ProfiledIdenticalTest, ResultsAreBitIdentical) {
  auto [threads, join] = GetParam();
  Engine engine;
  Rng rng(7);
  engine.PutGraph("g",
                  GenerateRandomGraph(240, 12, engine.dict(), &rng, "n"));
  const std::string query =
      "(((?x n_p0 ?y) AND (?y n_p1 ?z)) OPT (?z n_p2 ?w)) "
      "UNION (?x n_p0 ?y)";
  EvalOptions options;
  options.threads = threads;
  options.join = join;
  Result<MappingSet> off = engine.Query("g", query, options);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  ASSERT_TRUE(engine.EnableProfiling(0).ok());
  Result<MappingSet> on = engine.Query("g", query, options);
  engine.profiler()->TickNow();
  engine.DisableProfiling();
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  // Bit-identical: same mappings in the same insertion order.
  EXPECT_EQ(*off, *on);
  EXPECT_EQ(off->mappings(), on->mappings()) << "order differs";
}

INSTANTIATE_TEST_SUITE_P(
    Threads, ProfiledIdenticalTest,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(EvalOptions::Join::kHash,
                                         EvalOptions::Join::kNestedLoop,
                                         EvalOptions::Join::kIndexNestedLoop)));

// ---------------------------------------------------------------------------
// Concurrency: sampler racing workers, start/stop races
// ---------------------------------------------------------------------------

class ProfilerRaceTest : public ::testing::TestWithParam<int> {};

TEST_P(ProfilerRaceTest, SamplerRacesQueries) {
  int threads = GetParam();
  Engine engine;
  engine.SetDefaultThreads(threads);
  ASSERT_TRUE(
      engine
          .LoadGraphText("g", "a p b .\nb p c .\nc p d .\nd p e .\ne p f .")
          .ok());
  ASSERT_TRUE(engine.EnableProfiling(997).ok());  // real background sampler
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&engine, &failures] {
      for (int i = 0; i < 50; ++i) {
        Result<MappingSet> r =
            engine.Query("g", "(?x p ?y) AND (?y p ?z)");
        if (!r.ok() || r->size() != 4) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  // A light workload can drain before the first ~1ms sampling period
  // elapses; the contract is only that the sampler keeps running, so hold
  // a frame open until at least one tick lands.
  {
    ProfileFrame f("drain_wait");
    while (engine.profiler()->ticks() < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  engine.DisableProfiling();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(engine.profiler()->samples(), 0u);
}

TEST_P(ProfilerRaceTest, StartStopRacesRegistration) {
  int threads = GetParam();
  std::atomic<bool> stop{false};
  // Threads register/unregister (by running with frames) while the
  // profiler starts and stops repeatedly.
  std::vector<std::thread> workers;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        ProfileFrame f("race_tag");
        std::this_thread::yield();
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    Profiler profiler(ProfilerOptions{2000});
    ASSERT_TRUE(profiler.Start());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    profiler.Stop();
  }
  stop.store(true);
  for (std::thread& t : workers) t.join();
}

INSTANTIATE_TEST_SUITE_P(Threads, ProfilerRaceTest,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace rdfql
