#include "analysis/fragments.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace rdfql {
namespace {

class FragmentsTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Dictionary dict_;
};

TEST_F(FragmentsTest, OperatorProfile) {
  OperatorProfile prof = GetOperatorProfile(
      Parse("NS((?x a ?y) OPT ((?y b ?z) UNION (?z c ?w)))"));
  EXPECT_TRUE(prof.uses_ns);
  EXPECT_TRUE(prof.uses_opt);
  EXPECT_TRUE(prof.uses_union);
  EXPECT_FALSE(prof.uses_and);
  EXPECT_FALSE(prof.uses_filter);
}

TEST_F(FragmentsTest, InFragmentRespectsLetters) {
  PatternPtr auf = Parse("((?x a ?y) AND (?y b ?z)) UNION "
                         "((?x a ?y) FILTER ?x = c)");
  EXPECT_TRUE(InFragment(auf, "AUF"));
  EXPECT_TRUE(InFragment(auf, "AUFS"));
  EXPECT_FALSE(InFragment(auf, "AU"));
  EXPECT_FALSE(InFragment(auf, "AF"));

  PatternPtr aof = Parse("((?x a ?y) OPT (?y b ?z))");
  EXPECT_TRUE(InFragment(aof, "AOF"));
  EXPECT_FALSE(InFragment(aof, "AUF"));

  // A bare triple pattern belongs to every fragment.
  PatternPtr t = Parse("(?x a ?y)");
  EXPECT_TRUE(InFragment(t, "A"));
  EXPECT_TRUE(InFragment(t, "AUOFS"));
}

TEST_F(FragmentsTest, MinusCountsAsOptPlusFilter) {
  PatternPtr p = Parse("(?x a ?y) MINUS (?y b ?z)");
  EXPECT_TRUE(InFragment(p, "AOF"));
  EXPECT_FALSE(InFragment(p, "AO"));
  EXPECT_FALSE(InFragment(p, "AF"));
}

TEST_F(FragmentsTest, NsExcludedFromSparqlFragments) {
  EXPECT_FALSE(InFragment(Parse("NS((?x a ?y))"), "AUOFS"));
}

TEST_F(FragmentsTest, SimplePatternDetection) {
  // NS over AUFS: simple.
  EXPECT_TRUE(IsSimplePattern(
      Parse("NS((SELECT {?x} WHERE (?x a ?y)) UNION (?x b c))")));
  // NS over OPT: not simple.
  EXPECT_FALSE(IsSimplePattern(Parse("NS((?x a ?y) OPT (?y b ?z))")));
  // No top-level NS: not simple.
  EXPECT_FALSE(IsSimplePattern(Parse("(?x a ?y)")));
  // Nested NS: not simple (inner NS is not AUFS).
  EXPECT_FALSE(IsSimplePattern(Parse("NS(NS((?x a ?y)))")));
}

TEST_F(FragmentsTest, NsPatternDetection) {
  PatternPtr usp = Parse("NS((?x a ?y)) UNION NS((?x b ?z) AND (?z c d))");
  EXPECT_TRUE(IsNsPattern(usp));
  EXPECT_EQ(NsPatternWidth(usp), 2u);
  // A simple pattern is an ns-pattern of width 1.
  EXPECT_EQ(NsPatternWidth(Parse("NS((?x a ?y))")), 1u);
  // Mixed disjuncts break it.
  EXPECT_FALSE(IsNsPattern(Parse("NS((?x a ?y)) UNION (?x b ?z)")));
}

TEST_F(FragmentsTest, TopLevelDisjunctsFlattensInOrder) {
  PatternPtr p = Parse("(?a x b) UNION (?c x d) UNION (?e x f)");
  std::vector<PatternPtr> d = TopLevelDisjuncts(p);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(dict_.VarName(d[0]->triple().s.var()), "a");
  EXPECT_EQ(dict_.VarName(d[1]->triple().s.var()), "c");
  EXPECT_EQ(dict_.VarName(d[2]->triple().s.var()), "e");
}

TEST_F(FragmentsTest, UnionNormalFormCheck) {
  EXPECT_TRUE(IsUnionNormalForm(Parse("((?x a ?y) AND (?y b ?z)) UNION "
                                      "((?x c ?y) OPT (?y d ?z))")));
  EXPECT_FALSE(
      IsUnionNormalForm(Parse("(?x a ?y) AND ((?y b ?z) UNION (?z c d))")));
}

TEST_F(FragmentsTest, SyntacticSubsumptionFreeness) {
  EXPECT_TRUE(IsSyntacticallySubsumptionFree(
      Parse("(SELECT {?x} WHERE ((?x a ?y) AND (?y b ?z)))")));
  EXPECT_TRUE(IsSyntacticallySubsumptionFree(
      Parse("(?x a ?y) OPT (?y b ?z)")));  // well designed
  EXPECT_TRUE(
      IsSyntacticallySubsumptionFree(Parse("NS((?x a ?y) UNION (?x b ?z))")));
  // A UNION of different-domain CQs is not recognized (and indeed may
  // produce subsumed answers).
  EXPECT_FALSE(IsSyntacticallySubsumptionFree(
      Parse("(?x a ?y) UNION ((?x a ?y) AND (?y b ?z))")));
}

TEST_F(FragmentsTest, ProjectedFragments) {
  // Section 8 future work: SELECT on top of simple / ns-patterns.
  PatternPtr psp = Parse("(SELECT {?x} WHERE NS((?x a ?y) UNION "
                         "((?x a ?y) AND (?y b ?z))))");
  EXPECT_TRUE(IsProjectedSimplePattern(psp));
  EXPECT_TRUE(IsProjectedNsPattern(psp));
  EXPECT_FALSE(IsSimplePattern(psp));

  PatternPtr pusp =
      Parse("(SELECT {?x} WHERE (NS((?x a ?y)) UNION NS((?x b ?z))))");
  EXPECT_TRUE(IsProjectedNsPattern(pusp));
  EXPECT_FALSE(IsProjectedSimplePattern(pusp));

  // Union of projected simple patterns is a projected ns-pattern.
  PatternPtr union_psp =
      Parse("(SELECT {?x} WHERE NS((?x a ?y))) UNION NS((?x b ?z))");
  EXPECT_TRUE(IsProjectedNsPattern(union_psp));

  // SELECT over OPT inside NS is not in these fragments.
  EXPECT_FALSE(IsProjectedSimplePattern(
      Parse("(SELECT {?x} WHERE NS((?x a ?y) OPT (?y b ?z)))")));
  EXPECT_EQ(DescribeFragment(psp), "projected SP-SPARQL (Section 8 extension)");
  EXPECT_EQ(DescribeFragment(pusp),
            "projected USP-SPARQL (Section 8 extension)");
}

TEST_F(FragmentsTest, DescribeFragment) {
  EXPECT_EQ(DescribeFragment(Parse("(?x a ?y)")), "SPARQL[triple]");
  EXPECT_EQ(DescribeFragment(Parse("(?x a ?y) AND (?y b ?z)")), "SPARQL[A]");
  EXPECT_EQ(DescribeFragment(Parse("NS((?x a ?y))")),
            "SP-SPARQL (simple pattern)");
  EXPECT_EQ(DescribeFragment(Parse("NS((?x a ?y)) UNION NS((?x b ?z))")),
            "USP-SPARQL (ns-pattern, width 2)");
  EXPECT_EQ(DescribeFragment(Parse("NS((?x a ?y) OPT (?y b ?z))")),
            "NS-SPARQL");
}

}  // namespace
}  // namespace rdfql
