#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "obs/query_log.h"
#include "util/status.h"

namespace rdfql {
namespace {

TEST(WatchdogPolicyTest, DisabledByDefault) {
  WatchdogPolicy policy;
  EXPECT_FALSE(policy.Enabled());
  EXPECT_FALSE(policy.For("SPARQL[A]").Enforced());
}

TEST(WatchdogPolicyTest, PerFragmentOverridesBeatDefaults) {
  WatchdogPolicy policy;
  policy.defaults.max_wall_ms = 5000;
  policy.per_fragment["NS-SPARQL"].max_wall_ms = 100;
  policy.per_fragment["NS-SPARQL"].max_live_bytes = 1 << 20;
  EXPECT_TRUE(policy.Enabled());
  EXPECT_EQ(policy.For("SPARQL[A]").max_wall_ms, 5000u);
  EXPECT_EQ(policy.For("SPARQL[A]").max_live_bytes, 0u);
  EXPECT_EQ(policy.For("NS-SPARQL").max_wall_ms, 100u);
  EXPECT_EQ(policy.For("NS-SPARQL").max_live_bytes, 1u << 20);
}

TEST(WatchdogPolicyTest, OverridesAloneEnableThePolicy) {
  WatchdogPolicy policy;
  policy.per_fragment["NS-SPARQL"].max_wall_ms = 100;
  EXPECT_TRUE(policy.Enabled());
  // Fragments without an override fall back to the (unenforced) defaults.
  EXPECT_FALSE(policy.For("SPARQL[A]").Enforced());
}

class TelemetryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string triples;
    for (int i = 0; i < 20; ++i) {
      triples += "s" + std::to_string(i) + " p o" + std::to_string(i) + " .\n";
    }
    ASSERT_TRUE(engine_.LoadGraphText("g", triples).ok());
    engine_.EnableMetrics();
  }

  Engine engine_;
};

TEST_F(TelemetryEngineTest, ManualTicksDiffCountersIntoWindows) {
  TelemetryOptions options;
  options.interval_ms = 0;  // no thread: the test drives every tick
  options.window_count = 4;
  ASSERT_TRUE(engine_.StartTelemetry(options).ok());
  EXPECT_TRUE(engine_.live_monitoring_enabled());
  ASSERT_NE(engine_.telemetry(), nullptr);

  // Second StartTelemetry while running must refuse.
  EXPECT_EQ(engine_.StartTelemetry(options).code(),
            StatusCode::kInvalidArgument);

  engine_.telemetry()->TickNow();  // idle window: diffs against creation
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine_.Query("g", "(?x p ?y)").ok());
  }
  engine_.telemetry()->TickNow();

  TelemetrySnapshot snap = engine_.telemetry()->Snapshot();
  EXPECT_EQ(snap.ticks, 2u);
  EXPECT_EQ(snap.queries_total, 3u);
  EXPECT_EQ(snap.rejected_total, 0u);
  ASSERT_EQ(snap.windows.size(), 2u);
  EXPECT_EQ(snap.windows.front().queries, 0u);
  EXPECT_EQ(snap.windows.back().queries, 3u);
  EXPECT_EQ(snap.windows.back().eval_count, 3u);
  EXPECT_FALSE(snap.windows.back().eval_buckets.empty());
  EXPECT_GT(snap.eval_p50_ns, 0.0);
  EXPECT_GE(snap.eval_p99_ns, snap.eval_p50_ns);

  // Windows slide: only the newest `window_count` survive.
  for (int i = 0; i < 6; ++i) engine_.telemetry()->TickNow();
  snap = engine_.telemetry()->Snapshot();
  EXPECT_EQ(snap.windows.size(), options.window_count);
  // The later (idle) windows saw no queries; the cumulative total stands.
  EXPECT_EQ(snap.windows.back().queries, 0u);
  EXPECT_EQ(snap.queries_total, 3u);

  engine_.StopTelemetry();
  EXPECT_EQ(engine_.telemetry(), nullptr);
  // Restarting after a stop is allowed.
  ASSERT_TRUE(engine_.StartTelemetry(options).ok());
  engine_.StopTelemetry();
}

TEST_F(TelemetryEngineTest, SnapshotJsonRoundTrips) {
  TelemetryOptions options;
  options.interval_ms = 0;
  ASSERT_TRUE(engine_.StartTelemetry(options).ok());
  engine_.telemetry()->TickNow();
  ASSERT_TRUE(engine_.Query("g", "(?x p ?y)").ok());
  engine_.telemetry()->TickNow();

  TelemetrySnapshot snap = engine_.telemetry()->Snapshot();
  std::string json = snap.ToJson();
  TelemetrySnapshot parsed;
  std::string error;
  ASSERT_TRUE(ParseTelemetrySnapshot(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.unix_ms, snap.unix_ms);
  EXPECT_EQ(parsed.ticks, snap.ticks);
  EXPECT_EQ(parsed.queries_total, snap.queries_total);
  EXPECT_EQ(parsed.rejected_total, snap.rejected_total);
  EXPECT_EQ(parsed.watchdog_cancelled_total, snap.watchdog_cancelled_total);
  EXPECT_EQ(parsed.queries_active, snap.queries_active);
  // Doubles travel as %.6g: six significant digits survive, not the full
  // mantissa.
  EXPECT_NEAR(parsed.qps, snap.qps, snap.qps * 1e-5 + 1e-9);
  EXPECT_NEAR(parsed.eval_p50_ns, snap.eval_p50_ns,
              snap.eval_p50_ns * 1e-5 + 1e-9);
  ASSERT_EQ(parsed.windows.size(), snap.windows.size());
  for (size_t i = 0; i < snap.windows.size(); ++i) {
    EXPECT_EQ(parsed.windows[i].queries, snap.windows[i].queries);
    EXPECT_EQ(parsed.windows[i].eval_buckets, snap.windows[i].eval_buckets);
  }
  EXPECT_EQ(parsed.inflight.registered_total, snap.inflight.registered_total);

  // The round-tripped snapshot re-serializes identically.
  EXPECT_EQ(parsed.ToJson(), json);

  std::string garbage_error;
  EXPECT_FALSE(ParseTelemetrySnapshot("{not json", &parsed, &garbage_error));
  EXPECT_FALSE(garbage_error.empty());
  engine_.StopTelemetry();
}

TEST_F(TelemetryEngineTest, SnapshotFileIsRewrittenEachTick) {
  std::string path = ::testing::TempDir() + "/rdfql_telemetry_test.json";
  std::remove(path.c_str());
  TelemetryOptions options;
  options.interval_ms = 0;
  options.snapshot_path = path;
  ASSERT_TRUE(engine_.StartTelemetry(options).ok());
  engine_.telemetry()->TickNow();
  ASSERT_TRUE(engine_.Query("g", "(?x p ?y)").ok());
  engine_.telemetry()->TickNow();

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  TelemetrySnapshot parsed;
  std::string error;
  ASSERT_TRUE(ParseTelemetrySnapshot(buffer.str(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.queries_total, 1u);
  EXPECT_EQ(parsed.ticks, 2u);
  engine_.StopTelemetry();
  std::remove(path.c_str());
}

TEST_F(TelemetryEngineTest, BackgroundSamplerTicksOnItsOwn) {
  TelemetryOptions options;
  options.interval_ms = 5;
  ASSERT_TRUE(engine_.StartTelemetry(options).ok());
  uint64_t seen = 0;
  for (int i = 0; i < 2000 && seen < 3; ++i) {
    seen = engine_.telemetry()->ticks();
    if (seen < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_GE(seen, 3u);
  engine_.StopTelemetry();
}

// The full watchdog loop, driven deterministically: a zero-interval sampler
// whose policy budgets wall time, a long cross-product query on a worker
// thread, and manual ticks until the sweep cancels it.
TEST_F(TelemetryEngineTest, WatchdogSweepCancelsOverBudgetQueries) {
  QueryLog log;
  engine_.SetQueryLog(&log);

  TelemetryOptions options;
  options.interval_ms = 0;
  options.watchdog.defaults.max_wall_ms = 30;
  ASSERT_TRUE(engine_.StartTelemetry(options).ok());

  Result<MappingSet> slow = Status::Internal("not run");
  std::thread worker([&] {
    slow = engine_.Query(
        "g",
        "((?a p ?x) AND ((?b p ?y) AND ((?c p ?z) AND ((?d p ?w) AND "
        "(?e p ?v)))))");
  });

  // Fast queries interleaved with the sweep stay under budget untouched.
  for (int i = 0; i < 200 && engine_.inflight()->watchdog_cancelled_total() == 0;
       ++i) {
    ASSERT_TRUE(engine_.Query("g", "(?x p ?y)").ok());
    engine_.telemetry()->TickNow();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  worker.join();

  ASSERT_FALSE(slow.ok());
  EXPECT_EQ(slow.status().code(), StatusCode::kCancelled);
  // The reason names the budget, so logs explain themselves.
  EXPECT_NE(slow.status().message().find("max_wall_ms"), std::string::npos)
      << slow.status().ToString();
  EXPECT_EQ(engine_.inflight()->watchdog_cancelled_total(), 1u);

  size_t watchdog_outcomes = 0;
  size_t ok_outcomes = 0;
  for (const QueryLogRecord& r : log.Snapshot()) {
    if (r.outcome == "watchdog_cancelled") ++watchdog_outcomes;
    if (r.outcome == "ok") ++ok_outcomes;
  }
  EXPECT_EQ(watchdog_outcomes, 1u);
  EXPECT_GE(ok_outcomes, 1u);

  // The cancellation shows up in the telemetry aggregates too.
  engine_.telemetry()->TickNow();
  TelemetrySnapshot snap = engine_.telemetry()->Snapshot();
  EXPECT_EQ(snap.watchdog_cancelled_total, 1u);
  EXPECT_EQ(engine_.MetricsSnapshot().counters.at(
                "engine.queries_watchdog_cancelled"),
            1u);
  engine_.StopTelemetry();
  engine_.SetQueryLog(nullptr);
}

// A per-fragment live-bytes budget cancels on memory, not time, and only
// for the fragment it names.
TEST_F(TelemetryEngineTest, WatchdogHonorsPerFragmentByteBudgets) {
  TelemetryOptions options;
  options.interval_ms = 0;
  // Budget only SPARQL[A] (the AND-only fragment of the cross product);
  // 64KiB of live mappings trips long before the product completes.
  options.watchdog.per_fragment["SPARQL[A]"].max_live_bytes = 64 * 1024;
  ASSERT_TRUE(engine_.StartTelemetry(options).ok());

  Result<MappingSet> slow = Status::Internal("not run");
  std::thread worker([&] {
    slow = engine_.Query(
        "g",
        "((?a p ?x) AND ((?b p ?y) AND ((?c p ?z) AND ((?d p ?w) AND "
        "(?e p ?v)))))");
  });
  for (int i = 0;
       i < 2000 && engine_.inflight()->watchdog_cancelled_total() == 0; ++i) {
    engine_.telemetry()->TickNow();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  worker.join();

  ASSERT_FALSE(slow.ok());
  EXPECT_EQ(slow.status().code(), StatusCode::kCancelled);
  EXPECT_NE(slow.status().message().find("max_live_bytes"), std::string::npos)
      << slow.status().ToString();

  // A query in a different fragment is untouched by the override.
  Result<MappingSet> other =
      engine_.Query("g", "(?x p ?y) OPT (?x p ?z)");
  EXPECT_TRUE(other.ok());
  engine_.StopTelemetry();
}

// A MetricsRegistry::Reset between ticks makes every cumulative counter go
// backwards. The sampler's window diffing must clamp those deltas to zero —
// not wrap to ~2^64 — and resume normal diffing from the reset baseline.
TEST_F(TelemetryEngineTest, WindowDiffingClampsAcrossMidStreamReset) {
  TelemetryOptions options;
  options.interval_ms = 0;
  ASSERT_TRUE(engine_.StartTelemetry(options).ok());
  engine_.telemetry()->TickNow();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine_.Query("g", "(?x p ?y)").ok());
  }
  engine_.telemetry()->TickNow();
  TelemetrySnapshot snap = engine_.telemetry()->Snapshot();
  EXPECT_EQ(snap.windows.back().queries, 3u);

  // One more query, then the rug-pull: counters drop below the window base.
  ASSERT_TRUE(engine_.Query("g", "(?x p ?y)").ok());
  engine_.ResetMetrics();
  engine_.telemetry()->TickNow();
  snap = engine_.telemetry()->Snapshot();
  // Clamped: a sane zero-delta window, no underflow anywhere.
  EXPECT_EQ(snap.windows.back().queries, 0u);
  EXPECT_EQ(snap.windows.back().eval_count, 0u);
  EXPECT_LT(snap.queries_total, 1000u);
  EXPECT_GE(snap.qps, 0.0);
  EXPECT_LT(snap.qps, 1e6);

  // Diffing resumes from the reset baseline, not the stale one.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(engine_.Query("g", "(?x p ?y)").ok());
  }
  engine_.telemetry()->TickNow();
  snap = engine_.telemetry()->Snapshot();
  EXPECT_EQ(snap.windows.back().queries, 2u);
  engine_.StopTelemetry();
}

// Snapshot JSON with the optional alert and build tails present: the parser
// must round-trip them exactly, and rdfql_top's panel data must survive.
TEST_F(TelemetryEngineTest, SnapshotJsonRoundTripsWithAlertTail) {
  ASSERT_TRUE(engine_
                  .SetAlertRules(
                      R"({"version":1,"rules":[{"name":"any-query",
                          "agg":"delta","metric":"engine.queries","op":">",
                          "threshold":0,"windows":["10s"]}]})")
                  .ok());
  TelemetryOptions options;
  options.interval_ms = 0;
  ASSERT_TRUE(engine_.StartTelemetry(options).ok());
  engine_.telemetry()->TickNow();
  ASSERT_TRUE(engine_.Query("g", "(?x p ?y)").ok());
  engine_.telemetry()->TickNow();

  TelemetrySnapshot snap = engine_.telemetry()->Snapshot();
  ASSERT_TRUE(snap.has_alerts);
  EXPECT_FALSE(snap.build_sha.empty());
  std::string json = snap.ToJson();
  TelemetrySnapshot parsed;
  std::string error;
  ASSERT_TRUE(ParseTelemetrySnapshot(json, &parsed, &error)) << error;
  EXPECT_TRUE(parsed.has_alerts);
  ASSERT_EQ(parsed.alerts.rules.size(), 1u);
  EXPECT_EQ(parsed.alerts.rules[0].name, "any-query");
  EXPECT_EQ(parsed.alerts.rules[0].state, "firing");
  EXPECT_EQ(parsed.build_sha, snap.build_sha);
  EXPECT_EQ(parsed.build_type, snap.build_type);
  // Canonical: parse -> re-serialize is byte-identical.
  EXPECT_EQ(parsed.ToJson(), json);
  engine_.StopTelemetry();
}

}  // namespace
}  // namespace rdfql
