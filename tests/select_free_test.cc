#include "transform/select_free.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/evaluator.h"
#include "parser/parser.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

class SelectFreeTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Dictionary dict_;
};

TEST_F(SelectFreeTest, RemovesEverySelect) {
  PatternPtr p = Parse(
      "(SELECT {?x} WHERE ((?x a ?y) AND (SELECT {?y} WHERE (?y b ?z))))");
  PatternPtr sf = SelectFreeVersion(p, &dict_);
  EXPECT_FALSE(sf->Uses(PatternKind::kSelect));
}

TEST_F(SelectFreeTest, ProjectedVariablesKeepTheirNames) {
  PatternPtr p = Parse("(SELECT {?x} WHERE (?x a ?y))");
  PatternPtr sf = SelectFreeVersion(p, &dict_);
  VarId x = dict_.FindVar("x");
  VarId y = dict_.FindVar("y");
  const std::vector<VarId>& vars = sf->Vars();
  EXPECT_TRUE(std::binary_search(vars.begin(), vars.end(), x));
  // ?y was projected away: it must have been renamed.
  EXPECT_FALSE(std::binary_search(vars.begin(), vars.end(), y));
}

// Lemma F.2: µ ∈ ⟦P⟧G iff some µ' ∈ ⟦P_sf⟧G has µ ⪯ µ' and
// dom(µ) = dom(µ') ∩ var(P).
TEST_F(SelectFreeTest, LemmaF2OnRandomPatterns) {
  Rng rng(61);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.allow_minus = spec.allow_ns = true;
  spec.max_depth = 3;
  for (int i = 0; i < 60; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    PatternPtr sf = SelectFreeVersion(p, &dict_);
    const std::vector<VarId>& pvars = p->Vars();
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "i");
      MappingSet rp = EvalPattern(g, p);
      MappingSet rsf = EvalPattern(g, sf);
      // Forward: every µ has a witness µ'.
      for (const Mapping& m : rp) {
        bool found = false;
        for (const Mapping& mp : rsf) {
          if (m.SubsumedBy(mp) && m.Domain() == mp.RestrictTo(pvars).Domain()) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found);
      }
      // Backward: restricting any µ' to var(P) gives an answer of P.
      for (const Mapping& mp : rsf) {
        EXPECT_TRUE(rp.Contains(mp.RestrictTo(pvars)));
      }
    }
  }
}

TEST_F(SelectFreeTest, SelectFreePatternUnchanged) {
  PatternPtr p = Parse("(?x a ?y) OPT (?y b ?z)");
  PatternPtr sf = SelectFreeVersion(p, &dict_);
  EXPECT_TRUE(Pattern::Equal(p, sf));
}

}  // namespace
}  // namespace rdfql
