// Tests of the QBF substrate and the QBF → SPARQL[AOFS] reduction (the
// PSPACE-completeness backdrop of Section 7: full SPARQL evaluation).

#include "complexity/qbf.h"

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "complexity/sat_solver.h"
#include "transform/opt_rewriter.h"

namespace rdfql {
namespace {

Qbf MakeQbf(std::vector<std::pair<Qbf::Quant, int>> prefix, int num_vars,
            std::vector<std::vector<Lit>> clauses) {
  Qbf q;
  q.prefix = std::move(prefix);
  q.matrix.num_vars = num_vars;
  for (auto& c : clauses) q.matrix.AddClause(std::move(c));
  return q;
}

constexpr auto kE = Qbf::Quant::kExists;
constexpr auto kA = Qbf::Quant::kForall;

TEST(QbfSolverTest, CuratedFormulas) {
  // ∃x. x : true.
  EXPECT_TRUE(SolveQbf(MakeQbf({{kE, 1}}, 1, {{1}})));
  // ∀x. x : false.
  EXPECT_FALSE(SolveQbf(MakeQbf({{kA, 1}}, 1, {{1}})));
  // ∀x ∃y. (x∨y) ∧ (¬x∨¬y) : true (y = ¬x).
  EXPECT_TRUE(SolveQbf(MakeQbf({{kA, 1}, {kE, 2}}, 2, {{1, 2}, {-1, -2}})));
  // ∃y ∀x. (x∨y) ∧ (¬x∨¬y) : false.
  EXPECT_FALSE(SolveQbf(MakeQbf({{kE, 2}, {kA, 1}}, 2, {{1, 2}, {-1, -2}})));
  // ∀x ∀y. x∨y : false; ∃x ∃y. x∧y : true.
  EXPECT_FALSE(SolveQbf(MakeQbf({{kA, 1}, {kA, 2}}, 2, {{1, 2}})));
  EXPECT_TRUE(SolveQbf(MakeQbf({{kE, 1}, {kE, 2}}, 2, {{1}, {2}})));
  // Empty matrix: vacuously true.
  EXPECT_TRUE(SolveQbf(MakeQbf({{kA, 1}}, 1, {})));
}

TEST(QbfSolverTest, AllExistentialMatchesSat) {
  Rng rng(11);
  for (int round = 0; round < 40; ++round) {
    Cnf cnf = RandomCnf(4, 1 + static_cast<int>(rng.NextBelow(8)), 2, &rng);
    Qbf qbf;
    qbf.matrix = cnf;
    for (int v = 1; v <= 4; ++v) qbf.prefix.emplace_back(kE, v);
    EXPECT_EQ(SolveQbf(qbf), SolveSat(cnf).satisfiable);
  }
}

TEST(QbfReductionTest, CuratedFormulasViaEvaluation) {
  Dictionary dict;
  int tag = 0;
  auto check = [&dict, &tag](const Qbf& q) {
    EvalInstance inst =
        QbfToPattern(q, &dict, "t" + std::to_string(tag++));
    EXPECT_EQ(DecideByEvaluation(inst), SolveQbf(q));
  };
  check(MakeQbf({{kE, 1}}, 1, {{1}}));
  check(MakeQbf({{kA, 1}}, 1, {{1}}));
  check(MakeQbf({{kA, 1}, {kE, 2}}, 2, {{1, 2}, {-1, -2}}));
  check(MakeQbf({{kE, 2}, {kA, 1}}, 2, {{1, 2}, {-1, -2}}));
  check(MakeQbf({{kA, 1}, {kA, 2}}, 2, {{1, 2}}));
  check(MakeQbf({{kE, 1}, {kE, 2}}, 2, {{1}, {2}}));
}

TEST(QbfReductionTest, PatternIsInAofsAfterDesugaring) {
  Dictionary dict;
  Rng rng(5);
  Qbf q = RandomQbf(3, 4, 2, &rng, true);
  EvalInstance inst = QbfToPattern(q, &dict, "frag");
  // MINUS is the only non-core operator; desugaring lands in SPARQL[AOFS].
  PatternPtr desugared = DesugarMinus(inst.pattern, &dict);
  EXPECT_TRUE(InFragment(desugared, "AOFS"));
}

TEST(QbfReductionTest, RandomAlternatingFormulas) {
  Dictionary dict;
  Rng rng(99);
  int true_count = 0;
  for (int round = 0; round < 30; ++round) {
    int n = 2 + static_cast<int>(rng.NextBelow(3));  // 2..4 variables
    Qbf q = RandomQbf(n, 1 + static_cast<int>(rng.NextBelow(5)), 2, &rng,
                      rng.NextBool());
    bool expected = SolveQbf(q);
    true_count += expected ? 1 : 0;
    EvalInstance inst =
        QbfToPattern(q, &dict, "r" + std::to_string(round));
    EXPECT_EQ(DecideByEvaluation(inst), expected) << "round " << round;
  }
  // The sample should contain both outcomes.
  EXPECT_GT(true_count, 0);
  EXPECT_LT(true_count, 30);
}

TEST(QbfReductionTest, DesugaredPatternStillDecides) {
  // The full SPARQL (OPT/FILTER) encoding — after desugaring MINUS — must
  // decide the same instances: this is the PSPACE-hardness artifact.
  Dictionary dict;
  Rng rng(123);
  for (int round = 0; round < 10; ++round) {
    Qbf q = RandomQbf(3, 3, 2, &rng, true);
    EvalInstance inst =
        QbfToPattern(q, &dict, "d" + std::to_string(round));
    PatternPtr desugared = DesugarMinus(inst.pattern, &dict);
    MappingSet result = EvalPattern(inst.graph, desugared);
    EXPECT_EQ(result.Contains(inst.mapping), SolveQbf(q));
  }
}

}  // namespace
}  // namespace rdfql
