#include "eval/ns.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/thread_pool.h"

namespace rdfql {
namespace {

Mapping Make(std::vector<std::pair<VarId, TermId>> b) {
  return Mapping::FromBindings(std::move(b));
}

TEST(NsTest, RemovesProperlySubsumed) {
  MappingSet input = MappingSet::FromList(
      {Make({{1, 1}}), Make({{1, 1}, {2, 2}}), Make({{1, 9}})});
  MappingSet expected =
      MappingSet::FromList({Make({{1, 1}, {2, 2}}), Make({{1, 9}})});
  EXPECT_EQ(RemoveSubsumedNaive(input), expected);
  EXPECT_EQ(RemoveSubsumedBucketed(input), expected);
}

TEST(NsTest, EmptyMappingRemovedWhenAnythingElsePresent) {
  MappingSet input = MappingSet::FromList({Mapping(), Make({{1, 1}})});
  MappingSet expected = MappingSet::FromList({Make({{1, 1}})});
  EXPECT_EQ(RemoveSubsumedNaive(input), expected);
  EXPECT_EQ(RemoveSubsumedBucketed(input), expected);
}

TEST(NsTest, LoneEmptyMappingSurvives) {
  MappingSet input = MappingSet::FromList({Mapping()});
  EXPECT_EQ(RemoveSubsumedNaive(input), input);
  EXPECT_EQ(RemoveSubsumedBucketed(input), input);
}

TEST(NsTest, EqualDomainMappingsNeverSubsumeEachOther) {
  MappingSet input =
      MappingSet::FromList({Make({{1, 1}, {2, 2}}), Make({{1, 1}, {2, 3}})});
  EXPECT_EQ(RemoveSubsumedNaive(input), input);
  EXPECT_EQ(RemoveSubsumedBucketed(input), input);
}

TEST(NsTest, Idempotent) {
  Rng rng(4);
  for (int round = 0; round < 30; ++round) {
    MappingSet s;
    int n = static_cast<int>(rng.NextBelow(20));
    for (int i = 0; i < n; ++i) {
      Mapping m;
      for (VarId v = 0; v < 4; ++v) {
        if (rng.NextBool(0.5)) m.Set(v, rng.NextBelow(3));
      }
      s.Add(m);
    }
    MappingSet once = RemoveSubsumedBucketed(s);
    EXPECT_EQ(RemoveSubsumedBucketed(once), once);
    EXPECT_TRUE(IsSubsumptionFree(once));
  }
}

TEST(NsTest, BucketedAgreesWithNaiveOnRandomSets) {
  Rng rng(11);
  for (int round = 0; round < 100; ++round) {
    MappingSet s;
    int n = static_cast<int>(rng.NextBelow(25));
    for (int i = 0; i < n; ++i) {
      Mapping m;
      for (VarId v = 0; v < 5; ++v) {
        if (rng.NextBool(0.45)) m.Set(v, rng.NextBelow(3));
      }
      s.Add(m);
    }
    EXPECT_EQ(RemoveSubsumedNaive(s), RemoveSubsumedBucketed(s));
  }
}

TEST(NsTest, SubsumptionIsPreservedSemantics) {
  // Every removed mapping is subsumed by a kept one, and kept mappings are
  // exactly the maximal elements.
  Rng rng(77);
  for (int round = 0; round < 30; ++round) {
    MappingSet s;
    int n = static_cast<int>(rng.NextBelow(15));
    for (int i = 0; i < n; ++i) {
      Mapping m;
      for (VarId v = 0; v < 4; ++v) {
        if (rng.NextBool(0.5)) m.Set(v, rng.NextBelow(2));
      }
      s.Add(m);
    }
    MappingSet max = RemoveSubsumedBucketed(s);
    EXPECT_TRUE(MappingSet::Subsumed(s, max));
    for (const Mapping& m : max) {
      EXPECT_TRUE(s.Contains(m));
    }
  }
}

// Parallel bucket pruning must produce byte-identical output (content and
// order) to the serial pass, for inputs well past the parallel threshold.
TEST(NsTest, ParallelBucketedMatchesSerialExactly) {
  ThreadPool pool(4);
  Rng rng(404);
  for (int round = 0; round < 10; ++round) {
    MappingSet s;
    for (int i = 0; i < 300; ++i) {
      Mapping m;
      for (VarId v = 0; v < 6; ++v) {
        if (rng.NextBool(0.5)) m.Set(v, rng.NextBelow(3));
      }
      s.Add(m);
    }
    MappingSet serial = RemoveSubsumedBucketed(s);
    MappingSet parallel = RemoveSubsumedBucketed(s, &pool);
    EXPECT_EQ(serial.mappings(), parallel.mappings());
    EXPECT_EQ(serial, RemoveSubsumedNaive(s));
  }
}

}  // namespace
}  // namespace rdfql
