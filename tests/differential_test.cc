// Differential testing: the production evaluator (indexed triple lookup,
// hash joins, bucketed NS) against the independently written
// ReferenceEval transcription of the paper's definitions. Any disagreement
// on any (pattern, graph) pair is a bug in one of them.

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "eval/reference_evaluator.h"
#include "parser/parser.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"
#include "workload/scenarios.h"

namespace rdfql {
namespace {

TEST(DifferentialTest, PaperExamplesAgree) {
  Dictionary dict;
  Graph pirate = scenarios::PirateBayGraph(&dict);
  Graph g1 = scenarios::ChileGraphG1(&dict);
  Graph g2 = scenarios::ChileGraphG2(&dict);
  const std::string queries[] = {
      scenarios::Example22Query(), scenarios::Example31Query(),
      scenarios::Example33Query(), scenarios::Theorem35Witness(),
      scenarios::Theorem36Witness()};
  for (const std::string& q : queries) {
    Result<PatternPtr> p = ParsePattern(q, &dict);
    ASSERT_TRUE(p.ok());
    for (const Graph* g : {&pirate, &g1, &g2}) {
      EXPECT_EQ(EvalPattern(*g, p.value()), ReferenceEval(*g, p.value()))
          << q;
    }
  }
}

TEST(DifferentialTest, RandomPatternsAllOperators) {
  Dictionary dict;
  Rng rng(31415);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.allow_minus = spec.allow_ns = true;
  spec.max_depth = 4;
  for (int i = 0; i < 150; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict, &rng);
    Graph g = GenerateRandomGraph(
        5 + static_cast<int>(rng.NextBelow(20)), 5, &dict, &rng, "d");
    EXPECT_EQ(EvalPattern(g, p), ReferenceEval(g, p)) << "pattern " << i;
  }
}

TEST(DifferentialTest, RandomPatternsOnDenseGraphs) {
  Dictionary dict;
  Rng rng(2718);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = true;
  spec.max_depth = 3;
  spec.num_iris = 2;  // few IRIs → many join matches and repeated values
  for (int i = 0; i < 60; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict, &rng);
    Graph g = GenerateRandomGraph(8, 2, &dict, &rng, "dense");
    EXPECT_EQ(EvalPattern(g, p), ReferenceEval(g, p));
  }
}

TEST(DifferentialTest, EmptyAndSingletonGraphs) {
  Dictionary dict;
  Rng rng(999);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.allow_minus = spec.allow_ns = true;
  spec.max_depth = 3;
  Graph empty;
  Graph singleton;
  singleton.Insert(dict.InternIri("i0"), dict.InternIri("i1"),
                   dict.InternIri("i2"));
  for (int i = 0; i < 60; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict, &rng);
    EXPECT_EQ(EvalPattern(empty, p), ReferenceEval(empty, p));
    EXPECT_EQ(EvalPattern(singleton, p), ReferenceEval(singleton, p));
  }
}

}  // namespace
}  // namespace rdfql
