// Serial/parallel equivalence sweeps: for threads ∈ {2, 4, 8} and every
// join strategy, random patterns from every language fragment evaluate to
// the SAME MappingSet — content and insertion order — as the serial
// evaluator, and EXPLAIN ANALYZE records the same per-operator
// cardinalities and work counters. This is the determinism contract of
// EvalOptions::threads (chunk-ordered merges, per-task result slots).

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "eval/evaluator.h"
#include "eval/explain.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

struct FragmentCase {
  const char* name;
  bool opt;
  bool filter;
  bool select;
  bool minus;
  bool ns;
};

constexpr FragmentCase kFragments[] = {
    {"AU", false, false, false, false, false},
    {"AUFS", false, true, true, false, false},
    {"AUOFS", true, true, true, false, false},
    {"full-NS-SPARQL", true, true, true, true, true},
};

using ParallelParam = std::tuple<int /*threads*/, EvalOptions::Join>;

class ParallelSweep : public ::testing::TestWithParam<ParallelParam> {
 protected:
  int threads() const { return std::get<0>(GetParam()); }
  EvalOptions::Join join() const { return std::get<1>(GetParam()); }

  PatternGenSpec SpecFor(const FragmentCase& fragment) const {
    PatternGenSpec spec;
    spec.allow_opt = fragment.opt;
    spec.allow_filter = fragment.filter;
    spec.allow_select = fragment.select;
    spec.allow_minus = fragment.minus;
    spec.allow_ns = fragment.ns;
    spec.max_depth = 3;
    return spec;
  }

  Dictionary dict_;
};

// Plans must match node for node: same operator labels, same result
// cardinalities, same work counters (join_probes, ns_pairs_compared, ...).
void ExpectSamePlan(const PlanNode& serial, const PlanNode& parallel,
                    const std::string& path) {
  EXPECT_EQ(serial.label, parallel.label) << "at " << path;
  EXPECT_EQ(serial.cardinality, parallel.cardinality)
      << "at " << path << " (" << serial.label << ")";
  ASSERT_EQ(serial.counters.size(), parallel.counters.size())
      << "at " << path << " (" << serial.label << ")";
  for (size_t i = 0; i < serial.counters.size(); ++i) {
    EXPECT_EQ(serial.counters[i], parallel.counters[i])
        << "at " << path << " (" << serial.label << ")";
  }
  ASSERT_EQ(serial.children.size(), parallel.children.size())
      << "at " << path << " (" << serial.label << ")";
  for (size_t i = 0; i < serial.children.size(); ++i) {
    ExpectSamePlan(*serial.children[i], *parallel.children[i],
                   path + "/" + std::to_string(i));
  }
}

TEST_P(ParallelSweep, ParallelEqualsSerialOnRandomInputs) {
  EvalOptions serial;
  serial.join = join();
  EvalOptions parallel = serial;
  parallel.threads = threads();
  for (size_t f = 0; f < std::size(kFragments); ++f) {
    PatternGenSpec spec = SpecFor(kFragments[f]);
    Rng rng(1000 * (f + 1) + threads());
    for (int i = 0; i < 10; ++i) {
      PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
      Graph g = GenerateRandomGraph(14, 4, &dict_, &rng, "par");
      MappingSet want = EvalPattern(g, p, serial);
      MappingSet got = EvalPattern(g, p, parallel);
      ASSERT_EQ(want, got) << kFragments[f].name << " iter " << i;
      // Insertion order is part of the contract, not just set equality.
      ASSERT_EQ(want.mappings(), got.mappings())
          << kFragments[f].name << " iter " << i << ": order differs";
    }
  }
}

TEST_P(ParallelSweep, ExplainRowCountsMatchSerial) {
  EvalOptions serial;
  serial.join = join();
  EvalOptions parallel = serial;
  parallel.threads = threads();
  for (size_t f = 0; f < std::size(kFragments); ++f) {
    PatternGenSpec spec = SpecFor(kFragments[f]);
    Rng rng(2000 * (f + 1) + threads());
    for (int i = 0; i < 5; ++i) {
      PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
      Graph g = GenerateRandomGraph(14, 4, &dict_, &rng, "parx");
      Explanation want = ExplainEval(g, p, dict_, serial);
      Explanation got = ExplainEval(g, p, dict_, parallel);
      ASSERT_EQ(want.result, got.result)
          << kFragments[f].name << " iter " << i;
      ASSERT_TRUE(want.plan != nullptr && got.plan != nullptr);
      ExpectSamePlan(*want.plan, *got.plan, kFragments[f].name);
    }
  }
}

TEST_P(ParallelSweep, SharedExternalPoolMatchesSerial) {
  // An externally owned pool (the Engine's usage pattern) behaves the same
  // as an evaluator-private pool.
  ThreadPool pool(threads());
  EvalOptions serial;
  serial.join = join();
  EvalOptions parallel = serial;
  parallel.threads = threads();
  parallel.pool = &pool;
  PatternGenSpec spec = SpecFor(kFragments[3]);
  Rng rng(31 + threads());
  for (int i = 0; i < 10; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    Graph g = GenerateRandomGraph(14, 4, &dict_, &rng, "parp");
    MappingSet want = EvalPattern(g, p, serial);
    MappingSet got = EvalPattern(g, p, parallel);
    ASSERT_EQ(want.mappings(), got.mappings()) << "iter " << i;
  }
}

std::string ParallelName(
    const ::testing::TestParamInfo<ParallelParam>& info) {
  std::string join;
  switch (std::get<1>(info.param)) {
    case EvalOptions::Join::kHash:
      join = "Hash";
      break;
    case EvalOptions::Join::kNestedLoop:
      join = "NestedLoop";
      break;
    case EvalOptions::Join::kIndexNestedLoop:
      join = "IndexNestedLoop";
      break;
  }
  return join + "_t" + std::to_string(std::get<0>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ParallelSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(EvalOptions::Join::kHash,
                                         EvalOptions::Join::kNestedLoop,
                                         EvalOptions::Join::kIndexNestedLoop)),
    ParallelName);

}  // namespace
}  // namespace rdfql
