#include "obs/openmetrics.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace rdfql {
namespace {

RegistrySnapshot SampleSnapshot() {
  MetricsRegistry reg;
  reg.GetCounter("eval.nodes")->Inc(7);
  reg.GetGauge("engine.graph_bytes")->Set(-5);
  Histogram* h = reg.GetHistogram("engine.eval_ns");
  h->Observe(0);    // bucket [0, 1)
  h->Observe(3);    // bucket [2, 4)
  h->Observe(3);
  h->Observe(100);  // bucket [64, 128)
  return reg.Snapshot();
}

TEST(OpenMetricsTest, RendersCounterGaugeAndCumulativeHistogram) {
  std::string text = RenderOpenMetrics(SampleSnapshot());
  EXPECT_NE(text.find("# TYPE rdfql_eval_nodes counter\n"
                      "rdfql_eval_nodes_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rdfql_engine_graph_bytes gauge\n"
                      "rdfql_engine_graph_bytes -5\n"),
            std::string::npos);
  // Buckets are cumulative over the exact power-of-two boundaries.
  EXPECT_NE(text.find("# TYPE rdfql_engine_eval_ns histogram\n"
                      "rdfql_engine_eval_ns_bucket{le=\"1\"} 1\n"
                      "rdfql_engine_eval_ns_bucket{le=\"4\"} 3\n"
                      "rdfql_engine_eval_ns_bucket{le=\"128\"} 4\n"
                      "rdfql_engine_eval_ns_bucket{le=\"+Inf\"} 4\n"
                      "rdfql_engine_eval_ns_sum 106\n"
                      "rdfql_engine_eval_ns_count 4\n"),
            std::string::npos);
  // Exposition ends with the EOF marker and nothing after it.
  std::string tail = "# EOF\n";
  ASSERT_GE(text.size(), tail.size());
  EXPECT_EQ(text.substr(text.size() - tail.size()), tail);
}

TEST(OpenMetricsTest, SanitizesMetricNames) {
  MetricsRegistry reg;
  reg.GetCounter("eval.join-probes")->Inc(1);
  std::string text = RenderOpenMetrics(reg.Snapshot());
  EXPECT_NE(text.find("rdfql_eval_join_probes_total 1"), std::string::npos);
}

TEST(OpenMetricsTest, CustomPrefix) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Inc(2);
  std::string text = RenderOpenMetrics(reg.Snapshot(), "myapp");
  EXPECT_NE(text.find("myapp_c_total 2"), std::string::npos);
  EXPECT_EQ(text.find("rdfql_"), std::string::npos);
}

TEST(OpenMetricsTest, EmptySnapshotIsJustEof) {
  std::string text = RenderOpenMetrics(RegistrySnapshot{}, "rdfql",
                                       /*with_build_info=*/false);
  EXPECT_EQ(text, "# EOF\n");
}

TEST(OpenMetricsTest, BuildInfoLeadsTheExposition) {
  std::string text = RenderOpenMetrics(RegistrySnapshot{});
  EXPECT_EQ(text.find("# TYPE rdfql_build info\n"), 0u);
  EXPECT_NE(text.find("rdfql_build_info{sha=\""), std::string::npos);
  EXPECT_NE(text.find(",build=\""), std::string::npos);
  std::string error;
  EXPECT_TRUE(LintOpenMetrics(text, &error)) << error;
  BuildInfo info = CurrentBuildInfo();
  EXPECT_FALSE(info.sha.empty());
  EXPECT_FALSE(info.build.empty());
}

TEST(OpenMetricsLintTest, AcceptsRenderedOutput) {
  std::string error;
  EXPECT_TRUE(LintOpenMetrics(RenderOpenMetrics(SampleSnapshot()), &error))
      << error;
  EXPECT_TRUE(LintOpenMetrics("# EOF\n", &error)) << error;
}

TEST(OpenMetricsLintTest, RejectsStructuralViolations) {
  struct Case {
    const char* name;
    const char* text;
  };
  const Case cases[] = {
      {"missing EOF", "# TYPE a counter\na_total 1\n"},
      {"content after EOF", "# EOF\n# TYPE a counter\na_total 1\n"},
      {"missing trailing newline", "# EOF"},
      {"blank line", "# TYPE a counter\n\na_total 1\n# EOF\n"},
      {"counter sample without _total suffix",
       "# TYPE a counter\na 1\n# EOF\n"},
      {"sample without TYPE", "a_total 1\n# EOF\n"},
      {"reopened family",
       "# TYPE a counter\na_total 1\n# TYPE b gauge\nb 1\n"
       "# TYPE a counter\na_total 2\n# EOF\n"},
      {"le not increasing",
       "# TYPE h histogram\nh_bucket{le=\"4\"} 1\nh_bucket{le=\"2\"} 2\n"
       "h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n# EOF\n"},
      {"buckets not cumulative",
       "# TYPE h histogram\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"4\"} 1\n"
       "h_bucket{le=\"+Inf\"} 3\nh_sum 3\nh_count 3\n# EOF\n"},
      {"+Inf bucket != count",
       "# TYPE h histogram\nh_bucket{le=\"2\"} 1\n"
       "h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n# EOF\n"},
      {"histogram missing +Inf",
       "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_sum 1\nh_count 1\n"
       "# EOF\n"},
      {"not a number", "# TYPE a counter\na_total x\n# EOF\n"},
      {"info sample without _info suffix",
       "# TYPE b info\nb{sha=\"x\"} 1\n# EOF\n"},
      {"info value not 1", "# TYPE b info\nb_info{sha=\"x\"} 2\n# EOF\n"},
      {"labels on a counter",
       "# TYPE a counter\na_total{k=\"v\"} 1\n# EOF\n"},
      {"labels on a gauge", "# TYPE g gauge\ng{k=\"v\"} 1\n# EOF\n"},
      {"malformed label set", "# TYPE b info\nb_info{sha=x} 1\n# EOF\n"},
      {"bad label name", "# TYPE b info\nb_info{1a=\"x\"} 1\n# EOF\n"},
      {"trailing label comma", "# TYPE b info\nb_info{a=\"x\",} 1\n# EOF\n"},
      {"extra label on histogram bucket",
       "# TYPE h histogram\nh_bucket{le=\"2\",k=\"v\"} 1\n"
       "h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n# EOF\n"},
  };
  for (const Case& c : cases) {
    std::string error;
    EXPECT_FALSE(LintOpenMetrics(c.text, &error)) << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
  }
}

TEST(OpenMetricsLintTest, RejectsDuplicateTypeLines) {
  std::string error;
  EXPECT_FALSE(LintOpenMetrics(
      "# TYPE a counter\na_total 1\n# TYPE a counter\na_total 2\n# EOF\n",
      &error));
  EXPECT_NE(error.find("duplicate # TYPE for family 'a'"), std::string::npos)
      << error;
  // Reopening a family after another necessarily re-declares its TYPE, so
  // it reports the same explicit error.
  EXPECT_FALSE(LintOpenMetrics(
      "# TYPE a counter\na_total 1\n# TYPE b gauge\nb 1\n"
      "# TYPE a counter\na_total 2\n# EOF\n",
      &error));
  EXPECT_NE(error.find("duplicate # TYPE for family 'a'"), std::string::npos)
      << error;
}

TEST(OpenMetricsLintTest, AcceptsInfoFamilies) {
  std::string error;
  EXPECT_TRUE(LintOpenMetrics(
      "# TYPE b info\nb_info{sha=\"abc\",build=\"Release\"} 1\n# EOF\n",
      &error))
      << error;
  // Escaped quote/backslash/newline in a label value.
  EXPECT_TRUE(LintOpenMetrics(
      "# TYPE b info\nb_info{v=\"a\\\"b\\\\c\\nd\"} 1\n# EOF\n", &error))
      << error;
  // Label-free info sample is legal.
  EXPECT_TRUE(LintOpenMetrics("# TYPE b info\nb_info 1\n# EOF\n", &error))
      << error;
}

}  // namespace
}  // namespace rdfql
