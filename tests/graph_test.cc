#include "rdf/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace rdfql {
namespace {

TEST(GraphTest, InsertDeduplicates) {
  Graph g;
  EXPECT_TRUE(g.Insert(1, 2, 3));
  EXPECT_FALSE(g.Insert(1, 2, 3));
  EXPECT_EQ(g.size(), 1u);
  EXPECT_TRUE(g.Contains(Triple(1, 2, 3)));
  EXPECT_FALSE(g.Contains(Triple(3, 2, 1)));
}

TEST(GraphTest, MatchFullyBound) {
  Graph g;
  g.Insert(1, 2, 3);
  EXPECT_EQ(g.CountMatches(1, 2, 3), 1u);
  EXPECT_EQ(g.CountMatches(1, 2, 4), 0u);
}

TEST(GraphTest, MatchWildcards) {
  Graph g;
  g.Insert(1, 2, 3);
  g.Insert(1, 2, 4);
  g.Insert(1, 5, 3);
  g.Insert(6, 2, 3);

  EXPECT_EQ(g.CountMatches(1, kInvalidTermId, kInvalidTermId), 3u);
  EXPECT_EQ(g.CountMatches(kInvalidTermId, 2, kInvalidTermId), 3u);
  EXPECT_EQ(g.CountMatches(kInvalidTermId, kInvalidTermId, 3), 3u);
  EXPECT_EQ(g.CountMatches(1, 2, kInvalidTermId), 2u);
  EXPECT_EQ(g.CountMatches(kInvalidTermId, 2, 3), 2u);
  EXPECT_EQ(g.CountMatches(1, kInvalidTermId, 3), 2u);
  EXPECT_EQ(
      g.CountMatches(kInvalidTermId, kInvalidTermId, kInvalidTermId), 4u);
}

// Every index path must agree with a brute-force scan.
TEST(GraphTest, MatchAgreesWithScanOnRandomGraphs) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    Graph g;
    for (int i = 0; i < 50; ++i) {
      g.Insert(rng.NextBelow(5), rng.NextBelow(5), rng.NextBelow(5));
    }
    for (int probe = 0; probe < 30; ++probe) {
      TermId s = rng.NextBool(0.5) ? rng.NextBelow(5) : kInvalidTermId;
      TermId p = rng.NextBool(0.5) ? rng.NextBelow(5) : kInvalidTermId;
      TermId o = rng.NextBool(0.5) ? rng.NextBelow(5) : kInvalidTermId;
      size_t expected = 0;
      for (const Triple& t : g.triples()) {
        if ((s == kInvalidTermId || t.s == s) &&
            (p == kInvalidTermId || t.p == p) &&
            (o == kInvalidTermId || t.o == o)) {
          ++expected;
        }
      }
      EXPECT_EQ(g.CountMatches(s, p, o), expected)
          << "probe (" << s << "," << p << "," << o << ")";
    }
  }
}

TEST(GraphTest, MatchAfterInsertInvalidatesIndexes) {
  Graph g;
  g.Insert(1, 2, 3);
  EXPECT_EQ(g.CountMatches(1, kInvalidTermId, kInvalidTermId), 1u);
  g.Insert(1, 9, 9);
  EXPECT_EQ(g.CountMatches(1, kInvalidTermId, kInvalidTermId), 2u);
}

TEST(GraphTest, EraseRemovesAndInvalidatesIndexes) {
  Graph g;
  g.Insert(1, 2, 3);
  g.Insert(4, 5, 6);
  EXPECT_EQ(g.CountMatches(1, kInvalidTermId, kInvalidTermId), 1u);
  EXPECT_TRUE(g.Erase(Triple(1, 2, 3)));
  EXPECT_FALSE(g.Erase(Triple(1, 2, 3)));
  EXPECT_EQ(g.size(), 1u);
  EXPECT_FALSE(g.Contains(Triple(1, 2, 3)));
  EXPECT_EQ(g.CountMatches(1, kInvalidTermId, kInvalidTermId), 0u);
  // Re-insert after erase keeps indexes consistent.
  g.Insert(1, 2, 9);
  EXPECT_EQ(g.CountMatches(1, kInvalidTermId, kInvalidTermId), 1u);
}

TEST(GraphTest, SubsetAndUnion) {
  Graph g1;
  g1.Insert(1, 2, 3);
  Graph g2 = g1;
  g2.Insert(4, 5, 6);
  EXPECT_TRUE(g1.IsSubsetOf(g2));
  EXPECT_FALSE(g2.IsSubsetOf(g1));

  Graph u = Graph::Union(g1, g2);
  EXPECT_EQ(u, g2);
}

TEST(GraphTest, IrisReturnsSortedUniqueIds) {
  Graph g;
  g.Insert(5, 1, 5);
  g.Insert(2, 1, 3);
  std::vector<TermId> iris = g.Iris();
  EXPECT_EQ(iris, (std::vector<TermId>{1, 2, 3, 5}));
}

TEST(GraphTest, EqualityIsSetEquality) {
  Graph a;
  a.Insert(1, 2, 3);
  a.Insert(4, 5, 6);
  Graph b;
  b.Insert(4, 5, 6);
  b.Insert(1, 2, 3);
  EXPECT_EQ(a, b);
  b.Insert(7, 8, 9);
  EXPECT_FALSE(a == b);
}

// Interleaved insert/match workloads exercise the index side buffers: each
// Match after an Insert must see all triples, in full index order, without
// rebuilding the base index every time.
TEST(GraphTest, InterleavedInsertAndMatchSeesEveryTriple) {
  Rng rng(314);
  Graph incremental;
  std::vector<Triple> all;
  for (int i = 0; i < 400; ++i) {
    Triple t(rng.NextBelow(20), rng.NextBelow(6), rng.NextBelow(20));
    if (incremental.Insert(t)) all.push_back(t);
    // Alternate the probed index so every side buffer gets exercised.
    TermId s = i % 3 == 0 ? t.s : kInvalidTermId;
    TermId p = i % 3 == 1 ? t.p : kInvalidTermId;
    TermId o = i % 3 == 2 ? t.o : kInvalidTermId;
    // A Graph built fresh from the same triples has no side buffers; both
    // must report identical matches in identical order.
    Graph fresh;
    for (const Triple& x : all) fresh.Insert(x);
    std::vector<Triple> got, want;
    incremental.Match(s, p, o, [&](const Triple& m) { got.push_back(m); });
    fresh.Match(s, p, o, [&](const Triple& m) { want.push_back(m); });
    ASSERT_EQ(got, want) << "iteration " << i;
    ASSERT_FALSE(want.empty());  // the inserted triple itself matches
  }
}

TEST(GraphTest, SideBufferCrossesRebuildThreshold) {
  // Push enough triples through interleaved probes that the side arrays
  // overflow their threshold and fold into the base at least once.
  Graph g;
  size_t expected = 0;
  for (TermId s = 0; s < 40; ++s) {
    for (TermId o = 0; o < 10; ++o) {
      g.Insert(s, 7, o);
      ++expected;
    }
    // Probe after every subject batch to force index maintenance.
    ASSERT_EQ(g.CountMatches(s, kInvalidTermId, kInvalidTermId), 10u);
  }
  EXPECT_EQ(g.CountMatches(kInvalidTermId, 7, kInvalidTermId), expected);
  // Spot-check order on a two-component scan after many incremental adds.
  std::vector<Triple> got;
  g.Match(3, 7, kInvalidTermId, [&](const Triple& t) { got.push_back(t); });
  ASSERT_EQ(got.size(), 10u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], Triple(3, 7, static_cast<TermId>(i)));
  }
}

TEST(GraphTest, EpochBumpsOnMutationOnly) {
  Graph g;
  uint64_t e0 = g.Epoch();
  EXPECT_TRUE(g.Insert(1, 2, 3));
  uint64_t e1 = g.Epoch();
  EXPECT_GT(e1, e0);
  // Duplicate insert and missing erase leave the triple set — and hence
  // the epoch — untouched.
  EXPECT_FALSE(g.Insert(1, 2, 3));
  EXPECT_EQ(g.Epoch(), e1);
  EXPECT_FALSE(g.Erase(Triple(9, 9, 9)));
  EXPECT_EQ(g.Epoch(), e1);
  EXPECT_TRUE(g.Erase(Triple(1, 2, 3)));
  EXPECT_GT(g.Epoch(), e1);
  // Reads never bump.
  uint64_t e2 = g.Epoch();
  (void)g.Contains(Triple(1, 2, 3));
  (void)g.CountMatches(kInvalidTermId, kInvalidTermId, kInvalidTermId);
  EXPECT_EQ(g.Epoch(), e2);
}

TEST(GraphTest, EpochIsProcessGlobalMonotone) {
  // Two independent graphs never reuse each other's mutation epochs: a
  // cache keyed by (name, epoch) can't confuse a replaced graph with its
  // predecessor.
  Graph a;
  EXPECT_TRUE(a.Insert(1, 2, 3));
  Graph b;
  EXPECT_TRUE(b.Insert(1, 2, 3));
  EXPECT_NE(a.Epoch(), b.Epoch());
  uint64_t before = b.Epoch();
  EXPECT_TRUE(a.Insert(4, 5, 6));
  EXPECT_GT(a.Epoch(), before);
}

TEST(GraphTest, CopiesInheritEpochUntilTheyDiverge) {
  Graph g;
  EXPECT_TRUE(g.Insert(1, 2, 3));
  Graph copy = g;
  // Identical content, identical epoch: cached results for one are valid
  // for the other.
  EXPECT_EQ(copy.Epoch(), g.Epoch());
  Graph moved = std::move(copy);
  EXPECT_EQ(moved.Epoch(), g.Epoch());
  // First mutation of either side mints a fresh global value.
  uint64_t shared = g.Epoch();
  EXPECT_TRUE(moved.Insert(7, 8, 9));
  EXPECT_NE(moved.Epoch(), shared);
  EXPECT_EQ(g.Epoch(), shared);
}

TEST(GraphTest, EraseInvalidatesIndexes) {
  Graph g;
  for (TermId i = 0; i < 100; ++i) g.Insert(i, 1, i + 1);
  EXPECT_EQ(g.CountMatches(kInvalidTermId, 1, kInvalidTermId), 100u);
  EXPECT_TRUE(g.Erase(Triple(50, 1, 51)));
  EXPECT_EQ(g.CountMatches(kInvalidTermId, 1, kInvalidTermId), 99u);
  EXPECT_EQ(g.CountMatches(50, 1, kInvalidTermId), 0u);
  // Inserts after an erase keep working through fresh side buffers.
  g.Insert(200, 1, 201);
  EXPECT_EQ(g.CountMatches(kInvalidTermId, 1, kInvalidTermId), 100u);
  EXPECT_EQ(g.CountMatches(200, kInvalidTermId, kInvalidTermId), 1u);
}

}  // namespace
}  // namespace rdfql
