// Tests of Section 6: CONSTRUCT semantics, Lemma 6.3, the Lemma 6.5
// monotone normal form, and Proposition 6.7 SELECT elimination.

#include "construct/construct_query.h"

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "analysis/monotonicity.h"
#include "parser/parser.h"
#include "rdf/ntriples.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

class ConstructTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  ConstructQuery ParseQ(const std::string& text) {
    Result<ParsedConstruct> r = ParseConstruct(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return ConstructQuery(r->templ, r->where);
  }
  Graph Load(const char* text) {
    Graph g;
    Status st = ParseNTriples(text, &dict_, &g);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return g;
  }
  Dictionary dict_;
};

TEST_F(ConstructTest, AnswerInstantiatesTemplates) {
  Graph g = Load("a knows b .\nb knows c .");
  ConstructQuery q =
      ParseQ("CONSTRUCT { (?y known_by ?x) } WHERE (?x knows ?y)");
  Graph out = q.Answer(g);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(Triple(dict_.FindIri("b"),
                                  dict_.FindIri("known_by"),
                                  dict_.FindIri("a"))));
}

TEST_F(ConstructTest, PartialMappingsSkipUnboundTemplates) {
  Graph g = Load("a born chile .\na email m .\nb born chile .");
  ConstructQuery q = ParseQ(
      "CONSTRUCT { (?x has_mail ?e) (?x person yes) } WHERE "
      "((?x born chile) OPT (?x email ?e))");
  Graph out = q.Answer(g);
  // b has no email, so only the `person` triple is produced for it.
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(out.Contains(Triple(dict_.FindIri("b"),
                                  dict_.FindIri("person"),
                                  dict_.FindIri("yes"))));
  EXPECT_FALSE(out.Contains(Triple(dict_.FindIri("b"),
                                   dict_.FindIri("has_mail"),
                                   dict_.FindIri("m"))));
}

TEST_F(ConstructTest, OutputIsASet) {
  Graph g = Load("a p b .\na q b .");
  ConstructQuery q =
      ParseQ("CONSTRUCT { (?x r ?y) } WHERE ((?x p ?y) UNION (?x q ?y))");
  EXPECT_EQ(q.Answer(g).size(), 1u);
}

TEST_F(ConstructTest, DropUnsatisfiableTemplates) {
  ConstructQuery q =
      ParseQ("CONSTRUCT { (?x r ?y) (?x r ?zz) } WHERE (?x p ?y)");
  EXPECT_EQ(q.DropUnsatisfiableTemplates().templ().size(), 1u);
}

// Lemma 6.3: CONSTRUCT H WHERE P ≡ CONSTRUCT H WHERE NS(P).
TEST_F(ConstructTest, Lemma63NsInvariance) {
  Rng rng(63);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.max_depth = 3;
  for (int i = 0; i < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    std::vector<VarId> vars = p->ScopeVars();
    std::vector<TriplePattern> templ;
    // Build a couple of templates over the pattern's variables.
    if (!vars.empty()) {
      templ.push_back(TriplePattern(
          Term::Var(vars[0]), Term::Iri(dict_.InternIri("t")),
          Term::Var(vars[vars.size() / 2])));
      templ.push_back(TriplePattern(Term::Var(vars.back()),
                                    Term::Iri(dict_.InternIri("u")),
                                    Term::Iri(dict_.InternIri("k"))));
    }
    ConstructQuery q(templ, p);
    ConstructQuery q_ns = WrapPatternInNs(q);
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "i");
      EXPECT_EQ(q.Answer(g), q_ns.Answer(g));
    }
  }
}

// Proposition 6.7: EliminateSelect preserves ans(Q,G) and lands in AUF.
TEST_F(ConstructTest, Proposition67SelectElimination) {
  ConstructQuery q = ParseQ(
      "CONSTRUCT { (?x r ?z) } WHERE "
      "((SELECT {?x ?y} WHERE ((?x p ?y) AND (?y p ?w))) AND (?y q ?z))");
  ConstructQuery auf = EliminateSelect(q, &dict_);
  EXPECT_FALSE(auf.pattern()->Uses(PatternKind::kSelect));
  Rng rng(67);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "i");
    EXPECT_EQ(q.Answer(g), auf.Answer(g));
  }
}

TEST_F(ConstructTest, Proposition67OnRandomAufsQueries) {
  Rng rng(671);
  PatternGenSpec spec;
  spec.allow_filter = spec.allow_select = true;
  spec.max_depth = 3;
  for (int i = 0; i < 30; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    std::vector<VarId> vars = p->ScopeVars();
    if (vars.empty()) continue;
    std::vector<TriplePattern> templ = {
        TriplePattern(Term::Var(vars[0]), Term::Iri(dict_.InternIri("t")),
                      Term::Var(vars.back()))};
    ConstructQuery q(templ, p);
    ConstructQuery auf = EliminateSelect(q, &dict_);
    EXPECT_TRUE(InFragment(auf.pattern(), "AUF"));
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(10, 4, &dict_, &rng, "i");
      EXPECT_EQ(q.Answer(g), auf.Answer(g));
    }
  }
}

// Lemma 6.5: for monotone CONSTRUCT queries the normal form is equivalent
// and its pattern is weakly monotone.
TEST_F(ConstructTest, Lemma65MonotoneNormalForm) {
  // A monotone query whose *pattern* is not weakly monotone would be the
  // deep case; here we take monotone queries from the AUF fragment plus an
  // OPT query whose construct output is monotone.
  std::vector<ConstructQuery> queries = {
      ParseQ("CONSTRUCT { (?x r ?y) } WHERE ((?x p ?y) UNION (?y q ?x))"),
      ParseQ("CONSTRUCT { (?x f ?y) (?y g ?x) } WHERE "
             "((?x p ?y) AND (?y p ?z))"),
      // OPT pattern, but both template triples only use left-side vars +
      // optional var — produced triples only grow with the graph.
      ParseQ("CONSTRUCT { (?x has ?e) } WHERE ((?x p ?y) OPT (?x q ?e))"),
  };
  Rng rng(65);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ConstructQuery q = queries[qi];
    ConstructQuery nf = MonotoneNormalForm(q, &dict_);
    // The rewritten pattern must be (empirically) weakly monotone.
    EXPECT_TRUE(LooksWeaklyMonotone(nf.pattern(), &dict_))
        << "query " << qi;
    for (int trial = 0; trial < 6; ++trial) {
      Graph g = GenerateRandomGraph(10, 4, &dict_, &rng, "i");
      EXPECT_EQ(q.Answer(g), nf.Answer(g)) << "query " << qi;
    }
  }
}

// Lemma 6.5's trickiest path: a template triple with no variables is
// produced iff the pattern has any answer at all.
TEST_F(ConstructTest, GroundTemplateTriples) {
  ConstructQuery q = ParseQ(
      "CONSTRUCT { (flag is set) (?x r ?y) } WHERE (?x p ?y)");
  Graph g = Load("a p b .");
  Graph out = q.Answer(g);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(Triple(dict_.FindIri("flag"),
                                  dict_.FindIri("is"),
                                  dict_.FindIri("set"))));
  Graph empty;
  EXPECT_TRUE(q.Answer(empty).empty());

  // The monotone normal form must preserve this behaviour.
  ConstructQuery nf = MonotoneNormalForm(q, &dict_);
  EXPECT_EQ(q.Answer(g), nf.Answer(g));
  EXPECT_TRUE(nf.Answer(empty).empty());
  Rng rng(660);
  for (int trial = 0; trial < 8; ++trial) {
    Graph h = GenerateRandomGraph(10, 4, &dict_, &rng, "gt");
    EXPECT_EQ(q.Answer(h), nf.Answer(h));
  }
}

// Theorem 6.6 / Corollary 6.8, end to end: monotone CONSTRUCT queries
// land in CONSTRUCT[AUF] with identical answers.
TEST_F(ConstructTest, MonotoneConstructToAufPipeline) {
  std::vector<ConstructQuery> queries = {
      ParseQ("CONSTRUCT { (?x r ?y) } WHERE ((?x p ?y) UNION (?y q ?x))"),
      ParseQ("CONSTRUCT { (?x has ?e) } WHERE ((?x p ?y) OPT (?x q ?e))"),
      ParseQ("CONSTRUCT { (?x colleague ?y) } WHERE "
             "(SELECT {?x ?y} WHERE ((?x w ?u) AND (?y w ?u)))"),
  };
  Rng rng(66);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    Result<AufConstructTranslation> t =
        MonotoneConstructToAuf(queries[qi], &dict_);
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE(t->verified) << "query " << qi;
    EXPECT_TRUE(InFragment(t->query.pattern(), "AUF")) << "query " << qi;
    for (int trial = 0; trial < 6; ++trial) {
      Graph g = GenerateRandomGraph(10, 4, &dict_, &rng, "m2a");
      EXPECT_EQ(queries[qi].Answer(g), t->query.Answer(g))
          << "query " << qi;
    }
  }
}

// A non-monotone CONSTRUCT query (its answers can shrink) is refuted.
TEST_F(ConstructTest, NonMonotoneConstructIsRefuted) {
  // The Example 3.3-style pattern makes the construct output non-monotone.
  ConstructQuery q = ParseQ(
      "CONSTRUCT { (?X born chile) } WHERE "
      "((?X was_born_in chile) AND ((?Y was_born_in chile) OPT "
      "(?Y email ?X)))");
  Result<AufConstructTranslation> t = MonotoneConstructToAuf(q, &dict_);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->verified);
}

TEST_F(ConstructTest, EmptyTemplateGivesEmptyAnswer) {
  ConstructQuery q(std::vector<TriplePattern>{}, Parse("(?x p ?y)"));
  Graph g = Load("a p b .");
  EXPECT_TRUE(q.Answer(g).empty());
  ConstructQuery nf = MonotoneNormalForm(q, &dict_);
  EXPECT_TRUE(nf.Answer(g).empty());
}

}  // namespace
}  // namespace rdfql
