// The query cache's correctness contract: canonicalization and hash
// stability, sharded-LRU bookkeeping, byte budgets, and — the part that
// matters — bit-for-bit equality of cached and uncached evaluation across
// join strategies, epoch invalidation after graph mutation, and sanity
// under concurrent hit/miss/eviction races (run under TSan by
// scripts/tsan_check.sh).

#include "core/query_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "obs/openmetrics.h"
#include "obs/query_log.h"

namespace rdfql {
namespace {

// --- Canonicalization (the keying contract of docs/observability.md) ---

TEST(CanonicalizeTest, IdentityOnAlreadyCanonicalText) {
  EXPECT_EQ(CanonicalizeQueryText("(?x p ?y)"), "(?x p ?y)");
  EXPECT_EQ(CanonicalizeQueryText(""), "");
  EXPECT_EQ(CanonicalizeQueryText("a"), "a");
}

TEST(CanonicalizeTest, CollapsesWhitespaceRuns) {
  EXPECT_EQ(CanonicalizeQueryText("(?x   p \t ?y)"), "(?x p ?y)");
  EXPECT_EQ(CanonicalizeQueryText("(?x p\n?y)"), "(?x p ?y)");
  EXPECT_EQ(CanonicalizeQueryText("  (?x p ?y)  "), "(?x p ?y)");
  EXPECT_EQ(CanonicalizeQueryText("\t\n"), "");
}

TEST(CanonicalizeTest, StripsComments) {
  EXPECT_EQ(CanonicalizeQueryText("(?x p ?y) # trailing"), "(?x p ?y)");
  EXPECT_EQ(CanonicalizeQueryText("# leading\n(?x p ?y)"), "(?x p ?y)");
  EXPECT_EQ(CanonicalizeQueryText("(?x p ?y)\n# only a comment"),
            "(?x p ?y)");
}

TEST(CanonicalizeTest, PreservesIriAndStringSpans) {
  // Inside <...> and "..." every byte is significant: two IRIs (or two
  // literals) differing only in internal spacing are different queries.
  EXPECT_EQ(CanonicalizeQueryText("(?x <http://e/a  b> ?y)"),
            "(?x <http://e/a  b> ?y)");
  EXPECT_EQ(CanonicalizeQueryText("(?x p \"a  #b\")"), "(?x p \"a  #b\")");
  EXPECT_NE(CanonicalizeQueryText("(?x p \"a b\")"),
            CanonicalizeQueryText("(?x p \"a  b\")"));
}

TEST(CanonicalizeTest, Idempotent) {
  for (const char* text :
       {"  (?x   p ?y) # c", "(?x <i  ri> \"l  it\")", "", "   # c\n"}) {
    std::string once = CanonicalizeQueryText(text);
    EXPECT_EQ(CanonicalizeQueryText(once), once) << text;
  }
}

TEST(StableQueryHashTest, InvariantUnderReformatting) {
  uint64_t want = StableQueryHash("(?x p ?y)");
  EXPECT_EQ(StableQueryHash("  (?x \t p \n ?y)  "), want);
  EXPECT_EQ(StableQueryHash("(?x p ?y) # comment"), want);
  EXPECT_NE(StableQueryHash("(?x p ?z)"), want);
}

TEST(StableQueryHashTest, ExactValueRegression) {
  // The hash-stability contract (docs/observability.md): these values are
  // frozen — query logs, baselines and dashboards key on them.
  EXPECT_EQ(StableQueryHash(""), 14695981039346656037ull);
  EXPECT_EQ(StableQueryHash("a"), 12638187200555641996ull);
  EXPECT_EQ(StableQueryHash("   a  "), 12638187200555641996ull);
}

// --- QueryCache unit behavior ---

CachedPlanPtr MakePlan(const std::string& canonical) {
  auto plan = std::make_shared<CachedPlan>();
  plan->canonical_query = canonical;
  return plan;
}

TEST(QueryCacheTest, PlanMissThenHit) {
  QueryCache cache{QueryCacheOptions{}};
  EXPECT_EQ(cache.GetPlan(1, "q"), nullptr);
  cache.PutPlan(1, MakePlan("q"));
  CachedPlanPtr hit = cache.GetPlan(1, "q");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->canonical_query, "q");
  QueryCacheStats s = cache.Stats();
  EXPECT_EQ(s.plan_misses, 1u);
  EXPECT_EQ(s.plan_hits, 1u);
  EXPECT_EQ(s.plan_entries, 1u);
}

TEST(QueryCacheTest, HashCollisionIsAMissNeverAWrongAnswer) {
  QueryCache cache{QueryCacheOptions{}};
  cache.PutPlan(7, MakePlan("the real query"));
  // Same hash, different canonical text: the stored text disagrees, so the
  // lookup must refuse to serve it.
  EXPECT_EQ(cache.GetPlan(7, "a colliding query"), nullptr);
  EXPECT_EQ(cache.Stats().plan_misses, 1u);
}

TEST(QueryCacheTest, PlanLruEvictsColdEntriesKeepsHotOnes) {
  QueryCacheOptions options;
  options.plan_capacity = 32;  // 2 per shard
  QueryCache cache(options);
  const uint64_t kHot = 999'999;
  cache.PutPlan(kHot, MakePlan("hot"));
  for (uint64_t h = 0; h < 64; ++h) {
    cache.PutPlan(h, MakePlan("q" + std::to_string(h)));
    // Touching the hot entry after every insert keeps it at its shard's
    // MRU end, so whatever the flood evicts, it is never the hot one.
    ASSERT_NE(cache.GetPlan(kHot, "hot"), nullptr) << "after insert " << h;
  }
  QueryCacheStats s = cache.Stats();
  EXPECT_GT(s.plan_evictions, 0u);
  EXPECT_LE(s.plan_entries, 32u);
}

MappingSet SmallResult() {
  Engine engine;
  EXPECT_TRUE(engine.LoadGraphText("g", "a p b .\nc p d .").ok());
  Result<MappingSet> r = engine.Query("g", "(?x p ?y)");
  EXPECT_TRUE(r.ok());
  return std::move(r.value());
}

ResultCacheKey KeyFor(uint64_t hash) {
  return ResultCacheKey{hash, "g", 1, 0};
}

TEST(QueryCacheTest, ResultMissStoreHitRoundTrip) {
  QueryCache cache{QueryCacheOptions{}};
  MappingSet result = SmallResult();
  EXPECT_EQ(cache.GetResult(KeyFor(1), "q"), nullptr);
  cache.PutResult(KeyFor(1), "q", result);
  std::shared_ptr<const MappingSet> hit = cache.GetResult(KeyFor(1), "q");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, result);
  EXPECT_EQ(hit->mappings(), result.mappings());  // insertion order too
}

TEST(QueryCacheTest, ResultKeyFieldsAllMatter) {
  QueryCache cache{QueryCacheOptions{}};
  MappingSet result = SmallResult();
  cache.PutResult(ResultCacheKey{1, "g", 1, 0}, "q", result);
  EXPECT_EQ(cache.GetResult(ResultCacheKey{2, "g", 1, 0}, "q"), nullptr);
  EXPECT_EQ(cache.GetResult(ResultCacheKey{1, "h", 1, 0}, "q"), nullptr);
  EXPECT_EQ(cache.GetResult(ResultCacheKey{1, "g", 2, 0}, "q"), nullptr);
  EXPECT_EQ(cache.GetResult(ResultCacheKey{1, "g", 1, 9}, "q"), nullptr);
  EXPECT_NE(cache.GetResult(ResultCacheKey{1, "g", 1, 0}, "q"), nullptr);
}

TEST(QueryCacheTest, ResultByteBudgetEvicts) {
  MappingSet result = SmallResult();
  size_t entry_bytes = result.ApproxBytes();
  ASSERT_GT(entry_bytes, 0u);
  QueryCacheOptions options;
  // Room for ~2 entries per shard; flooding one hash-spread of keys must
  // stay under the total budget by evicting.
  options.result_max_bytes = entry_bytes * 2 * kQueryCacheShards;
  options.result_entry_max_bytes = entry_bytes;
  QueryCache cache(options);
  for (uint64_t h = 0; h < 128; ++h) {
    cache.PutResult(KeyFor(h), "q" + std::to_string(h), result);
  }
  QueryCacheStats s = cache.Stats();
  EXPECT_GT(s.result_evictions, 0u);
  EXPECT_LE(s.result_bytes, options.result_max_bytes);
  EXPECT_EQ(s.result_oversize, 0u);
}

TEST(QueryCacheTest, OversizeResultIsRejectedNotStored) {
  MappingSet result = SmallResult();
  QueryCacheOptions options;
  options.result_entry_max_bytes = 1;  // everything real is oversize
  QueryCache cache(options);
  cache.PutResult(KeyFor(1), "q", result);
  EXPECT_EQ(cache.GetResult(KeyFor(1), "q"), nullptr);
  QueryCacheStats s = cache.Stats();
  EXPECT_EQ(s.result_oversize, 1u);
  EXPECT_EQ(s.result_entries, 0u);
}

TEST(QueryCacheTest, ClearDropsEntriesKeepsCounters) {
  QueryCache cache{QueryCacheOptions{}};
  cache.PutPlan(1, MakePlan("q"));
  cache.PutResult(KeyFor(1), "q", SmallResult());
  ASSERT_NE(cache.GetPlan(1, "q"), nullptr);
  cache.Clear();
  QueryCacheStats s = cache.Stats();
  EXPECT_EQ(s.plan_entries, 0u);
  EXPECT_EQ(s.result_entries, 0u);
  EXPECT_EQ(s.result_bytes, 0u);
  EXPECT_EQ(s.plan_hits, 1u);  // history survives Clear()
  EXPECT_EQ(cache.GetPlan(1, "q"), nullptr);
}

// --- Engine integration ---

constexpr char kGraphText[] =
    "juan born chile .\njuan email jp .\nana born chile .\n"
    "ana knows juan .\npedro born peru .";
constexpr char kQuery[] = "(?x born chile) OPT (?x email ?e)";

TEST(EngineCacheTest, MissThenHitServesIdenticalResult) {
  Engine engine;
  QueryCache cache{QueryCacheOptions{}};
  engine.SetQueryCache(&cache);
  ASSERT_TRUE(engine.LoadGraphText("g", kGraphText).ok());
  Result<MappingSet> first = engine.Query("g", kQuery);
  ASSERT_TRUE(first.ok());
  Result<MappingSet> second = engine.Query("g", kQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->mappings(), second->mappings());
  QueryCacheStats s = cache.Stats();
  EXPECT_EQ(s.result_misses, 1u);
  EXPECT_EQ(s.result_hits, 1u);
}

TEST(EngineCacheTest, WhitespaceVariantsShareOneEntry) {
  Engine engine;
  QueryCache cache{QueryCacheOptions{}};
  engine.SetQueryCache(&cache);
  ASSERT_TRUE(engine.LoadGraphText("g", kGraphText).ok());
  ASSERT_TRUE(engine.Query("g", "(?x born chile)").ok());
  ASSERT_TRUE(engine.Query("g", "  (?x   born\tchile) # same").ok());
  QueryCacheStats s = cache.Stats();
  EXPECT_EQ(s.result_misses, 1u);
  EXPECT_EQ(s.result_hits, 1u);
  EXPECT_EQ(s.result_entries, 1u);
}

TEST(EngineCacheTest, PerQueryOffBypassesWholesale) {
  Engine engine;
  QueryCache cache{QueryCacheOptions{}};
  engine.SetQueryCache(&cache);
  ASSERT_TRUE(engine.LoadGraphText("g", kGraphText).ok());
  EvalOptions off;
  off.use_plan_cache = CacheMode::kOff;
  off.use_result_cache = CacheMode::kOff;
  ASSERT_TRUE(engine.Query("g", kQuery, off).ok());
  ASSERT_TRUE(engine.Query("g", kQuery, off).ok());
  QueryCacheStats s = cache.Stats();
  EXPECT_EQ(s.bypasses, 2u);
  EXPECT_EQ(s.plan_entries, 0u);
  EXPECT_EQ(s.result_entries, 0u);
  EXPECT_EQ(s.hits() + s.misses(), 0u);
}

TEST(EngineCacheTest, PlanOnlyCacheSkipsReparseOnly) {
  Engine engine;
  QueryCacheOptions options;
  options.result_max_bytes = 0;  // plan side only
  QueryCache cache(options);
  engine.SetQueryCache(&cache);
  ASSERT_TRUE(engine.LoadGraphText("g", kGraphText).ok());
  Result<MappingSet> first = engine.Query("g", kQuery);
  Result<MappingSet> second = engine.Query("g", kQuery);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->mappings(), second->mappings());
  QueryCacheStats s = cache.Stats();
  EXPECT_EQ(s.plan_misses, 1u);
  EXPECT_EQ(s.plan_hits, 1u);
  EXPECT_EQ(s.result_hits + s.result_misses, 0u);
}

void ExpectSamePlan(const PlanNode& want, const PlanNode& got,
                    const std::string& path) {
  EXPECT_EQ(want.label, got.label) << "at " << path;
  EXPECT_EQ(want.cardinality, got.cardinality) << "at " << path;
  ASSERT_EQ(want.counters.size(), got.counters.size()) << "at " << path;
  for (size_t i = 0; i < want.counters.size(); ++i) {
    EXPECT_EQ(want.counters[i], got.counters[i]) << "at " << path;
  }
  ASSERT_EQ(want.children.size(), got.children.size()) << "at " << path;
  for (size_t i = 0; i < want.children.size(); ++i) {
    ExpectSamePlan(*want.children[i], *got.children[i],
                   path + "/" + std::to_string(i));
  }
}

// The headline acceptance criterion: for every join strategy, evaluating
// with the cache (cold store, then warm hit) is bit-for-bit the evaluation
// without it — same mappings in the same insertion order, and EXPLAIN
// reports the same instrumented plan.
TEST(EngineCacheTest, CachedEqualsUncachedAcrossJoinStrategies) {
  for (EvalOptions::Join join :
       {EvalOptions::Join::kHash, EvalOptions::Join::kNestedLoop,
        EvalOptions::Join::kIndexNestedLoop}) {
    Engine uncached;
    ASSERT_TRUE(uncached.LoadGraphText("g", kGraphText).ok());
    Engine cached;
    QueryCache cache{QueryCacheOptions{}};
    cached.SetQueryCache(&cache);
    ASSERT_TRUE(cached.LoadGraphText("g", kGraphText).ok());
    EvalOptions options;
    options.join = join;
    Result<MappingSet> want = uncached.Query("g", kQuery, options);
    ASSERT_TRUE(want.ok());
    Result<MappingSet> cold = cached.Query("g", kQuery, options);
    Result<MappingSet> warm = cached.Query("g", kQuery, options);
    ASSERT_TRUE(cold.ok() && warm.ok());
    EXPECT_EQ(want->mappings(), cold->mappings());
    EXPECT_EQ(want->mappings(), warm->mappings());
    EXPECT_EQ(cache.Stats().result_hits, 1u);
    // EXPLAIN always evaluates live (it reports work, and a cache hit does
    // none), so its plan must match the uncached engine's exactly.
    Result<QueryExplanation> ewant =
        uncached.QueryExplained("g", kQuery, options);
    Result<QueryExplanation> egot =
        cached.QueryExplained("g", kQuery, options);
    ASSERT_TRUE(ewant.ok() && egot.ok());
    EXPECT_EQ(ewant->result().mappings(), egot->result().mappings());
    ASSERT_TRUE(ewant->explanation.plan != nullptr &&
                egot->explanation.plan != nullptr);
    ExpectSamePlan(*ewant->explanation.plan, *egot->explanation.plan,
                   "join");
  }
}

TEST(EngineCacheTest, GraphMutationInvalidatesViaEpoch) {
  Engine engine;
  QueryCache cache{QueryCacheOptions{}};
  engine.SetQueryCache(&cache);
  ASSERT_TRUE(engine.LoadGraphText("g", "a born chile .").ok());
  Result<MappingSet> before = engine.Query("g", "(?x born chile)");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 1u);
  ASSERT_TRUE(engine.Query("g", "(?x born chile)").ok());  // warm hit
  EXPECT_EQ(cache.Stats().result_hits, 1u);
  // Mutation bumps the epoch: the cached entry is silently stale-keyed and
  // the next evaluation must see the new triple.
  ASSERT_TRUE(engine.LoadGraphText("g", "b born chile .").ok());
  Result<MappingSet> after = engine.Query("g", "(?x born chile)");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 2u);
  QueryCacheStats s = cache.Stats();
  EXPECT_EQ(s.result_hits, 1u);  // no stale hit after the insert
  EXPECT_EQ(s.result_misses, 2u);
  // The re-stored entry under the new epoch serves hits again.
  ASSERT_TRUE(engine.Query("g", "(?x born chile)").ok());
  EXPECT_EQ(cache.Stats().result_hits, 2u);
}

// Non-monotone operators are the reason the epoch keys the WHOLE graph
// state: under NS/MINUS an *insert* can shrink the answer, so serving any
// pre-mutation entry would be wrong in both directions.
TEST(EngineCacheTest, EpochInvalidationCoversNonMonotoneNs) {
  Engine engine;
  QueryCache cache{QueryCacheOptions{}};
  engine.SetQueryCache(&cache);
  ASSERT_TRUE(engine.LoadGraphText("g", "juan born chile .").ok());
  const char* ns_query =
      "NS((?x born chile) UNION ((?x born chile) AND (?x email ?e)))";
  Result<MappingSet> before = engine.Query("g", ns_query);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 1u);  // {?x=juan}, no email binding
  ASSERT_TRUE(engine.LoadGraphText("g", "juan email jp .").ok());
  Result<MappingSet> after = engine.Query("g", ns_query);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 1u);
  // The NS answer changed shape: the subsuming {?x, ?e} mapping replaced
  // the bare {?x} one. A stale cache hit would have returned `before`.
  EXPECT_NE(before->mappings(), after->mappings());
  EXPECT_EQ(after->mappings()[0].size(), 2u);
}

TEST(EngineCacheTest, ExplainStampsCacheNote) {
  Engine engine;
  QueryCache cache{QueryCacheOptions{}};
  ASSERT_TRUE(engine.LoadGraphText("g", kGraphText).ok());
  Result<QueryExplanation> no_cache = engine.QueryExplained("g", kQuery);
  ASSERT_TRUE(no_cache.ok());
  EXPECT_TRUE(no_cache->cache_note.empty());
  engine.SetQueryCache(&cache);
  Result<QueryExplanation> cold = engine.QueryExplained("g", kQuery);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->cache_note, "plan=miss result=live");
  EXPECT_NE(cold->ToString().find("cache: plan=miss result=live"),
            std::string::npos);
  Result<QueryExplanation> warm = engine.QueryExplained("g", kQuery);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->cache_note, "plan=hit result=live");
  EvalOptions off;
  off.use_plan_cache = CacheMode::kOff;
  off.use_result_cache = CacheMode::kOff;
  Result<QueryExplanation> bypass = engine.QueryExplained("g", kQuery, off);
  ASSERT_TRUE(bypass.ok());
  EXPECT_EQ(bypass->cache_note, "bypass");
}

TEST(EngineCacheTest, QueryLogRecordsCacheOutcome) {
  Engine engine;
  QueryCache cache{QueryCacheOptions{}};
  QueryLog log;  // ring only
  engine.SetQueryCache(&cache);
  engine.SetQueryLog(&log);
  ASSERT_TRUE(engine.LoadGraphText("g", kGraphText).ok());
  ASSERT_TRUE(engine.Query("g", kQuery).ok());
  ASSERT_TRUE(engine.Query("g", kQuery).ok());
  EvalOptions off;
  off.use_plan_cache = CacheMode::kOff;
  off.use_result_cache = CacheMode::kOff;
  ASSERT_TRUE(engine.Query("g", kQuery, off).ok());
  std::vector<QueryLogRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].cache, "miss");
  EXPECT_EQ(records[1].cache, "result_hit");
  EXPECT_EQ(records[2].cache, "bypass");
  engine.SetQueryLog(nullptr);
}

TEST(EngineCacheTest, MetricsExposeCacheCountersAndGauges) {
  Engine engine;
  engine.EnableMetrics();
  QueryCache cache{QueryCacheOptions{}};
  engine.SetQueryCache(&cache);
  ASSERT_TRUE(engine.LoadGraphText("g", kGraphText).ok());
  EvalOptions off;
  off.use_plan_cache = CacheMode::kOff;
  off.use_result_cache = CacheMode::kOff;
  ASSERT_TRUE(engine.Query("g", kQuery).ok());
  ASSERT_TRUE(engine.Query("g", kQuery).ok());
  ASSERT_TRUE(engine.Query("g", kQuery, off).ok());
  RegistrySnapshot snap = engine.MetricsSnapshot();
  EXPECT_EQ(snap.counters["engine.cache_hit"], 1u);
  // Cold run: one plan miss + one result miss fold into the shared
  // miss counter.
  EXPECT_EQ(snap.counters["engine.cache_miss"], 2u);
  EXPECT_EQ(snap.counters["engine.cache_bypass"], 1u);
  EXPECT_EQ(snap.gauges["engine.cache_plan_entries"], 1);
  EXPECT_EQ(snap.gauges["engine.cache_result_entries"], 1);
  EXPECT_GT(snap.gauges["engine.cache_result_bytes"], 0);
  std::string text = RenderOpenMetrics(snap);
  EXPECT_NE(text.find("engine_cache_hit_total 1"), std::string::npos);
  EXPECT_NE(text.find("engine_cache_bypass_total 1"), std::string::npos);
  EXPECT_NE(text.find("engine_cache_result_entries"), std::string::npos);
  std::string error;
  EXPECT_TRUE(LintOpenMetrics(text, &error)) << error;
}

// --- Concurrency: hit/miss/eviction races must neither crash nor ever
// serve a wrong answer. A tiny cache forces evictions mid-race. ---

class CacheRaceTest : public ::testing::TestWithParam<int> {};

TEST_P(CacheRaceTest, ConcurrentMixedWorkloadStaysCorrect) {
  const int kThreads = GetParam();
  Engine engine;
  QueryCacheOptions options;
  options.plan_capacity = 16;  // 1 per shard: constant churn
  options.result_max_bytes = 1 << 16;
  QueryCache cache(options);
  ASSERT_TRUE(engine.LoadGraphText("g", kGraphText).ok());
  // Serial references, computed on the SAME engine before the cache is
  // attached (a second engine would intern TermIds in a different order,
  // and mapping equality is by id).
  const std::vector<std::string> repeated = {
      "(?x born chile)", kQuery, "(?x born ?c)", "(?x knows ?y)"};
  std::vector<MappingSet> want;
  for (const std::string& q : repeated) {
    Result<MappingSet> r = engine.Query("g", q);
    ASSERT_TRUE(r.ok());
    want.push_back(std::move(r.value()));
  }
  engine.SetQueryCache(&cache);
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        // Repeat-heavy with a unique-query side channel: hits, misses and
        // evictions all race on the same shards.
        size_t qi = static_cast<size_t>(i) % repeated.size();
        Result<MappingSet> r = engine.Query("g", repeated[qi]);
        if (!r.ok() || r->mappings() != want[qi].mappings()) {
          failures.fetch_add(1);
        }
        Result<MappingSet> u = engine.Query(
            "g", "(?x unique_t" + std::to_string(t) + "_i" +
                     std::to_string(i) + " ?y)");
        if (!u.ok() || u->size() != 0) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  QueryCacheStats s = cache.Stats();
  // Every lookup resolved to a hit or a miss; nothing was double-counted.
  EXPECT_GT(s.result_hits, 0u);
  EXPECT_GT(s.plan_evictions, 0u);
  EXPECT_LE(s.plan_entries, 16u);
}

TEST_P(CacheRaceTest, EpochInvalidationBetweenConcurrentRounds) {
  // Engine queries are reads-only concurrent (the graph must not mutate
  // under in-flight evaluations), so inserts interleave BETWEEN rounds of
  // concurrent readers: every round races hit/miss/store on the cache, and
  // every round boundary forces an epoch invalidation the next round must
  // observe — a stale hit would report the previous round's size.
  const int kThreads = GetParam();
  Engine engine;
  QueryCache cache{QueryCacheOptions{}};
  engine.SetQueryCache(&cache);
  constexpr int kRounds = 4;
  std::atomic<int> bad{0};
  for (int round = 0; round < kRounds; ++round) {
    ASSERT_TRUE(
        engine
            .LoadGraphText("g", "s" + std::to_string(round) + " p o" +
                                    std::to_string(round) + " .")
            .ok());
    const size_t want_size = static_cast<size_t>(round) + 1;
    std::vector<std::thread> readers;
    for (int t = 0; t < kThreads; ++t) {
      readers.emplace_back([&] {
        for (int i = 0; i < 20; ++i) {
          Result<MappingSet> r = engine.Query("g", "(?x p ?y)");
          if (!r.ok() || r->size() != want_size) bad.fetch_add(1);
        }
      });
    }
    for (std::thread& r : readers) r.join();
  }
  EXPECT_EQ(bad.load(), 0);
  QueryCacheStats s = cache.Stats();
  // At least one miss per epoch (several threads may miss concurrently
  // before the first store lands — that's the race under test), and every
  // lookup resolved to exactly one of hit or miss.
  const uint64_t lookups = static_cast<uint64_t>(kRounds) * kThreads * 20;
  EXPECT_GE(s.result_misses, static_cast<uint64_t>(kRounds));
  EXPECT_GT(s.result_hits, 0u);
  EXPECT_EQ(s.result_hits + s.result_misses, lookups);
}

INSTANTIATE_TEST_SUITE_P(Threads, CacheRaceTest,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace rdfql
