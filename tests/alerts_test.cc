#include "obs/alerts.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "obs/history.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/random.h"
#include "workload/graph_generator.h"

namespace rdfql {
namespace {

// ---------------------------------------------------------------------------
// Rule-file grammar
// ---------------------------------------------------------------------------

TEST(AlertsTest, FragmentMetricNameComposes) {
  EXPECT_EQ(FragmentMetricName("engine.eval_ns", "SPARQL[AO]"),
            "engine.eval_ns.fragment.SPARQL[AO]");
}

TEST(AlertsTest, ParseDurationMs) {
  struct Case {
    const char* text;
    uint64_t want;
  };
  const Case good[] = {{"500", 500},     {"500ms", 500}, {"0", 0},
                       {"30s", 30000},   {"5m", 300000}, {"1h", 3600000},
                       {"90s", 90000}};
  for (const Case& c : good) {
    uint64_t ms = 0;
    EXPECT_TRUE(ParseDurationMs(c.text, &ms)) << c.text;
    EXPECT_EQ(ms, c.want) << c.text;
  }
  const char* bad[] = {"", "ms", "s", "5x", "-5s", "5 s", "1.5s", "s5"};
  for (const char* text : bad) {
    uint64_t ms = 0;
    EXPECT_FALSE(ParseDurationMs(text, &ms)) << text;
  }
}

TEST(AlertsTest, ParseRulesAcceptsFullGrammarInAnyKeyOrder) {
  // The doc example with keys deliberately shuffled per rule.
  const std::string json = R"({"version":1,"rules":[
    {"windows":["30s","5m"],"severity":"page","agg":"p99",
     "metric":"engine.eval_ns","name":"opt-p99","fragment":"SPARQL[AO]",
     "op":">","threshold":"50ms","for":"10s","keep":"30s",
     "escalate_watchdog_wall_ms":100},
    {"name":"rejection-burn","agg":"burn_rate",
     "metric":"engine.queries_rejected","denominator":"engine.queries",
     "objective":0.01,"op":">","threshold":2,"windows":[60000,"10m"]}]})";
  std::vector<AlertRule> rules;
  std::string error;
  ASSERT_TRUE(ParseAlertRules(json, &rules, &error)) << error;
  ASSERT_EQ(rules.size(), 2u);

  const AlertRule& r0 = rules[0];
  EXPECT_EQ(r0.name, "opt-p99");
  EXPECT_EQ(r0.severity, "page");
  EXPECT_EQ(r0.condition.agg, AlertCondition::Agg::kP99);
  EXPECT_EQ(r0.condition.metric, "engine.eval_ns");
  EXPECT_EQ(r0.condition.fragment, "SPARQL[AO]");
  EXPECT_EQ(r0.condition.op, '>');
  // "50ms" in a *_ns threshold position converts to nanoseconds.
  EXPECT_DOUBLE_EQ(r0.condition.threshold, 50e6);
  EXPECT_EQ(r0.condition.windows_ms, (std::vector<uint64_t>{30000, 300000}));
  EXPECT_EQ(r0.for_ms, 10000u);
  EXPECT_EQ(r0.keep_ms, 30000u);
  EXPECT_EQ(r0.escalate_watchdog_wall_ms, 100u);

  const AlertRule& r1 = rules[1];
  EXPECT_EQ(r1.severity, "warn");  // default
  EXPECT_EQ(r1.condition.agg, AlertCondition::Agg::kBurnRate);
  EXPECT_EQ(r1.condition.denominator, "engine.queries");
  EXPECT_DOUBLE_EQ(r1.condition.objective, 0.01);
  EXPECT_DOUBLE_EQ(r1.condition.threshold, 2.0);
  EXPECT_EQ(r1.condition.windows_ms, (std::vector<uint64_t>{60000, 600000}));
  EXPECT_EQ(r1.for_ms, 0u);
  EXPECT_EQ(r1.keep_ms, 0u);
}

TEST(AlertsTest, ValueRuleDefaultsToWindowlessEvaluation) {
  std::vector<AlertRule> rules;
  std::string error;
  ASSERT_TRUE(ParseAlertRules(
      R"({"version":1,"rules":[{"name":"g","agg":"value",
          "metric":"engine.graph_bytes","op":">","threshold":1000}]})",
      &rules, &error))
      << error;
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].condition.windows_ms, (std::vector<uint64_t>{0}));
}

TEST(AlertsTest, ParseRulesRejectsMalformedFiles) {
  struct Case {
    const char* json;
    const char* want_error;
  };
  const Case cases[] = {
      {R"({"version":2,"rules":[]})", "unsupported rules version"},
      {R"({"rules":[]})", "unsupported rules version"},
      {R"({"version":1})", "missing \"rules\""},
      {R"({"version":1,"zzz":[],"rules":[]})", "unknown key"},
      {R"({"version":1,"rules":[{"agg":"rate","metric":"m",
           "windows":["1m"]}]})",
       "missing a name"},
      {R"({"version":1,"rules":[{"name":"r","agg":"rate",
           "windows":["1m"]}]})",
       "missing a metric"},
      {R"({"version":1,"rules":[{"name":"r","metric":"m",
           "windows":["1m"]}]})",
       "missing agg"},
      {R"({"version":1,"rules":[{"name":"r","agg":"rate","metric":"m",
           "windows":["1m"],"zzz":1}]})",
       "unknown rule key 'zzz'"},
      {R"({"version":1,"rules":[{"name":"r","agg":"rate","metric":"m"}]})",
       "at least one window"},
      {R"({"version":1,"rules":[{"name":"r","agg":"burn_rate","metric":"m",
           "objective":0.1,"windows":["1m"]}]})",
       "denominator"},
      {R"({"version":1,"rules":[{"name":"r","agg":"burn_rate","metric":"m",
           "denominator":"d","windows":["1m"]}]})",
       "objective"},
      {R"({"version":1,"rules":[
           {"name":"r","agg":"rate","metric":"m","windows":["1m"]},
           {"name":"r","agg":"rate","metric":"m","windows":["1m"]}]})",
       "duplicate rule name 'r'"},
      {R"({"version":1,"rules":[{"name":"r","agg":"rate","metric":"m",
           "windows":["1m"],"op":">="}]})",
       "op wants"},
      {R"({"version":1,"rules":[{"name":"r","agg":"mean","metric":"m",
           "windows":["1m"]}]})",
       "agg wants"},
      {R"({"version":1,"rules":[{"name":"r","agg":"rate","metric":"m",
           "windows":["1q"]}]})",
       "window"},
      {R"({"version":1,"rules":[{"name":"r","agg":"rate","metric":"m",
           "windows":["1m"],"threshold":"fast"}]})",
       "threshold"},
  };
  for (const Case& c : cases) {
    std::vector<AlertRule> rules;
    std::string error;
    EXPECT_FALSE(ParseAlertRules(c.json, &rules, &error)) << c.json;
    EXPECT_NE(error.find(c.want_error), std::string::npos)
        << "got '" << error << "', want substring '" << c.want_error << "'";
  }
}

// ---------------------------------------------------------------------------
// Alert log
// ---------------------------------------------------------------------------

AlertTransition SampleTransition() {
  AlertTransition t;
  t.unix_ms = 1700000002000;
  t.rule = "opt-p99";
  t.state = "firing";
  t.severity = "page";
  t.fragment = "SPARQL[AO]";
  t.value = 81.5e6;
  t.threshold = 50e6;
  t.windows_ms = {30000, 300000};
  return t;
}

TEST(AlertsTest, TransitionJsonRoundTrips) {
  AlertTransition t = SampleTransition();
  std::string json = t.ToJson();
  AlertTransition parsed;
  std::string error;
  ASSERT_TRUE(ParseAlertLogLine(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.unix_ms, t.unix_ms);
  EXPECT_EQ(parsed.rule, t.rule);
  EXPECT_EQ(parsed.state, t.state);
  EXPECT_EQ(parsed.severity, t.severity);
  EXPECT_EQ(parsed.fragment, t.fragment);
  EXPECT_DOUBLE_EQ(parsed.value, t.value);
  EXPECT_DOUBLE_EQ(parsed.threshold, t.threshold);
  EXPECT_EQ(parsed.windows_ms, t.windows_ms);
  EXPECT_EQ(parsed.ToJson(), json);
}

TEST(AlertsTest, ParseAlertLogLineRejectsMalformedRecords) {
  AlertTransition t = SampleTransition();
  t.state = "exploded";
  std::vector<std::string> cases = {
      "",
      "{}",
      t.ToJson(),  // unknown state
      SampleTransition().ToJson().substr(0, 30),
      SampleTransition().ToJson() + "x",
  };
  for (const std::string& line : cases) {
    AlertTransition parsed;
    std::string error;
    EXPECT_FALSE(ParseAlertLogLine(line, &parsed, &error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(AlertsTest, LogKeepsBoundedRingAndAppendsToFile) {
  std::string path = ::testing::TempDir() + "/alerts_test_log.jsonl";
  std::remove(path.c_str());
  AlertLogOptions options;
  options.path = path;
  options.append = false;
  options.ring_capacity = 2;
  AlertLog log(options);
  ASSERT_TRUE(log.ok()) << log.error();
  for (int i = 0; i < 3; ++i) {
    AlertTransition t = SampleTransition();
    t.unix_ms = 1000 + static_cast<uint64_t>(i);
    log.Record(t);
  }
  EXPECT_EQ(log.recorded(), 3u);
  std::vector<AlertTransition> ring = log.Snapshot();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0].unix_ms, 1001u);
  EXPECT_EQ(ring[1].unix_ms, 1002u);
  log.Flush();
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    AlertTransition parsed;
    std::string error;
    EXPECT_TRUE(ParseAlertLogLine(line, &parsed, &error)) << error;
    ++lines;
  }
  EXPECT_EQ(lines, 3u);  // the file keeps everything; only the ring is bounded
  std::remove(path.c_str());
}

TEST(AlertsTest, LogReportsOpenFailure) {
  AlertLogOptions options;
  options.path = "/nonexistent-dir-zzz/alerts.jsonl";
  AlertLog log(options);
  EXPECT_FALSE(log.ok());
  EXPECT_FALSE(log.error().empty());
}

// ---------------------------------------------------------------------------
// State machine
// ---------------------------------------------------------------------------

/// Drives an AlertEngine with a synthetic clock: each Tick increments the
/// "err" counter by `inc`, records the registry into the history, and
/// evaluates the rules at `t`.
struct AlertHarness {
  MetricsRegistry reg;
  MetricsHistory history;

  void Tick(AlertEngine* engine, uint64_t inc, uint64_t t) {
    if (inc != 0) reg.GetCounter("err")->Inc(inc);
    history.Record(reg.Snapshot(), t);
    engine->Evaluate(history, t);
  }
};

std::vector<AlertRule> MustParse(const std::string& json) {
  std::vector<AlertRule> rules;
  std::string error;
  EXPECT_TRUE(ParseAlertRules(json, &rules, &error)) << error;
  return rules;
}

std::string RuleState(const AlertEngine& engine, size_t i = 0) {
  AlertSnapshot snap = engine.Snapshot();
  return i < snap.rules.size() ? snap.rules[i].state : "<missing>";
}

TEST(AlertStateMachineTest, PendingFiringResolvedWithForAndKeep) {
  AlertEngine engine(MustParse(
      R"({"version":1,"rules":[{"name":"err-rate","agg":"rate",
          "metric":"err","op":">","threshold":50,"windows":["2s"],
          "for":"2s","keep":"3s","severity":"page"}]})"));
  AlertHarness h;

  h.Tick(&engine, 0, 1000);  // baseline
  EXPECT_EQ(RuleState(engine), "ok");

  h.Tick(&engine, 100, 2000);  // rate 100/s > 50: breach begins
  EXPECT_EQ(RuleState(engine), "pending");
  EXPECT_EQ(engine.pending_total(), 1u);
  h.Tick(&engine, 100, 3000);  // held 1s < for: still pending
  EXPECT_EQ(RuleState(engine), "pending");
  h.Tick(&engine, 100, 4000);  // held 2s >= for: fires
  EXPECT_EQ(RuleState(engine), "firing");
  EXPECT_EQ(engine.firing_total(), 1u);
  EXPECT_EQ(engine.firing_now(), 1);
  EXPECT_EQ(engine.Snapshot().rules[0].fires, 1u);

  h.Tick(&engine, 0, 5000);  // rate drops to 50 (not > 50): clear begins
  EXPECT_EQ(RuleState(engine), "firing");
  h.Tick(&engine, 0, 6000);  // clear 1s < keep: hysteresis holds it firing
  EXPECT_EQ(RuleState(engine), "firing");
  h.Tick(&engine, 200, 7000);  // breach returns: the clear clock resets
  EXPECT_EQ(RuleState(engine), "firing");
  EXPECT_EQ(engine.firing_total(), 1u);  // no re-fire while already firing

  h.Tick(&engine, 0, 8000);  // the 7000 burst still in-window: breaching
  h.Tick(&engine, 0, 9000);  // clear begins here
  h.Tick(&engine, 0, 10000);
  h.Tick(&engine, 0, 11000);
  EXPECT_EQ(RuleState(engine), "firing");  // clear for 2s < keep 3s
  h.Tick(&engine, 0, 12000);               // clear for 3s: resolves
  EXPECT_EQ(RuleState(engine), "resolved");
  EXPECT_EQ(engine.resolved_total(), 1u);
  EXPECT_EQ(engine.firing_now(), 0);

  // A resolved rule re-arms: a new breach walks pending -> firing again.
  h.Tick(&engine, 200, 13000);
  EXPECT_EQ(RuleState(engine), "pending");
  h.Tick(&engine, 200, 14000);
  h.Tick(&engine, 200, 15000);
  EXPECT_EQ(RuleState(engine), "firing");
  EXPECT_EQ(engine.pending_total(), 2u);
  EXPECT_EQ(engine.firing_total(), 2u);
  EXPECT_EQ(engine.Snapshot().rules[0].fires, 2u);

  // Every transition was logged, in order.
  std::vector<AlertTransition> logged = engine.log()->Snapshot();
  std::vector<std::string> states;
  for (const AlertTransition& t : logged) states.push_back(t.state);
  EXPECT_EQ(states, (std::vector<std::string>{"pending", "firing", "resolved",
                                              "pending", "firing"}));
  EXPECT_EQ(logged[0].rule, "err-rate");
  EXPECT_EQ(logged[0].severity, "page");
  EXPECT_DOUBLE_EQ(logged[0].threshold, 50.0);
}

TEST(AlertStateMachineTest, PendingClearsSilentlyBeforeFor) {
  AlertEngine engine(MustParse(
      R"({"version":1,"rules":[{"name":"blip","agg":"rate",
          "metric":"err","op":">","threshold":50,"windows":["2s"],
          "for":"5s"}]})"));
  AlertHarness h;
  h.Tick(&engine, 0, 1000);
  h.Tick(&engine, 100, 2000);  // transient spike
  EXPECT_EQ(RuleState(engine), "pending");
  ASSERT_EQ(engine.log()->Snapshot().size(), 1u);
  h.Tick(&engine, 0, 3000);  // spike gone before `for` elapsed
  EXPECT_EQ(RuleState(engine), "ok");
  // Going back to ok is not an alert-worthy event: nothing new was logged.
  EXPECT_EQ(engine.log()->Snapshot().size(), 1u);
  EXPECT_EQ(engine.pending_total(), 1u);
  EXPECT_EQ(engine.firing_total(), 0u);
}

TEST(AlertStateMachineTest, ZeroForFiresAndZeroKeepResolvesSameTick) {
  AlertEngine engine(MustParse(
      R"({"version":1,"rules":[{"name":"fast","agg":"rate",
          "metric":"err","op":">","threshold":50,"windows":["2s"]}]})"));
  AlertHarness h;
  h.Tick(&engine, 0, 1000);
  h.Tick(&engine, 200, 2000);  // pending and firing in the same evaluation
  EXPECT_EQ(RuleState(engine), "firing");
  EXPECT_EQ(engine.pending_total(), 1u);
  EXPECT_EQ(engine.firing_total(), 1u);
  h.Tick(&engine, 0, 4001);  // window slides past the burst: clear resolves
  EXPECT_EQ(RuleState(engine), "resolved");
  std::vector<AlertTransition> logged = engine.log()->Snapshot();
  ASSERT_EQ(logged.size(), 3u);
  EXPECT_EQ(logged[0].state, "pending");
  EXPECT_EQ(logged[1].state, "firing");
  EXPECT_EQ(logged[2].state, "resolved");
  EXPECT_EQ(logged[0].unix_ms, logged[1].unix_ms);
}

TEST(AlertStateMachineTest, AllWindowsMustBreach) {
  AlertEngine engine(MustParse(
      R"({"version":1,"rules":[{"name":"burn-guard","agg":"rate",
          "metric":"err","op":">","threshold":60,
          "windows":["2s","4s"]}]})"));
  AlertHarness h;
  h.Tick(&engine, 0, 1000);
  for (uint64_t t = 2000; t <= 5000; t += 1000) h.Tick(&engine, 0, t);
  // One burst: the short window breaches (100/s) but the long one (50/s)
  // does not — the multi-window guard suppresses the transient spike.
  h.Tick(&engine, 200, 6000);
  EXPECT_EQ(RuleState(engine), "ok");
  // Sustained load: both windows breach.
  h.Tick(&engine, 200, 7000);
  h.Tick(&engine, 200, 8000);
  EXPECT_EQ(RuleState(engine), "firing");
  // The reported value is the first (shortest) window's evaluation.
  EXPECT_DOUBLE_EQ(engine.Snapshot().rules[0].value, 200.0);
}

TEST(AlertStateMachineTest, BurnRateComparesAgainstObjective) {
  AlertEngine engine(MustParse(
      R"({"version":1,"rules":[{"name":"burn","agg":"burn_rate",
          "metric":"err","denominator":"total","objective":0.1,
          "op":">","threshold":5,"windows":["2s"]}]})"));
  AlertHarness h;
  h.history.Record(h.reg.Snapshot(), 1000);
  engine.Evaluate(h.history, 1000);
  EXPECT_EQ(RuleState(engine), "ok");

  // 100 bad of 100 total against a 10% objective: burning 10x budget.
  h.reg.GetCounter("err")->Inc(100);
  h.reg.GetCounter("total")->Inc(100);
  h.history.Record(h.reg.Snapshot(), 2000);
  engine.Evaluate(h.history, 2000);
  EXPECT_EQ(RuleState(engine), "firing");
  EXPECT_DOUBLE_EQ(engine.Snapshot().rules[0].value, 10.0);

  // Healthy traffic dilutes the ratio below threshold: 100/200 over the
  // window is 5x budget, not strictly greater than 5.
  h.reg.GetCounter("total")->Inc(100);
  h.history.Record(h.reg.Snapshot(), 3000);
  engine.Evaluate(h.history, 3000);
  EXPECT_EQ(RuleState(engine), "resolved");
}

TEST(AlertStateMachineTest, BurnRateIsZeroWithoutDenominatorTraffic) {
  AlertEngine engine(MustParse(
      R"({"version":1,"rules":[{"name":"burn","agg":"burn_rate",
          "metric":"err","denominator":"total","objective":0.1,
          "op":">","threshold":1,"windows":["2s"]}]})"));
  AlertHarness h;
  h.Tick(&engine, 0, 1000);
  h.Tick(&engine, 100, 2000);  // errors but zero denominator traffic
  EXPECT_EQ(RuleState(engine), "ok");
  EXPECT_DOUBLE_EQ(engine.Snapshot().rules[0].value, 0.0);
}

TEST(AlertStateMachineTest, WatchdogEscalationsTrackFiringRules) {
  AlertEngine engine(MustParse(
      R"({"version":1,"rules":[
        {"name":"opt-slow","agg":"delta","op":">","threshold":0,
         "metric":"err","fragment":"SPARQL[AO]","windows":["2s"],
         "escalate_watchdog_wall_ms":123},
        {"name":"no-escalation","agg":"delta","op":">","threshold":0,
         "metric":"err","windows":["2s"]}]})"));
  EXPECT_TRUE(engine.wants_fragments());
  EXPECT_TRUE(engine.WantsFragment("SPARQL[AO]"));
  EXPECT_FALSE(engine.WantsFragment("SPARQL[A]"));

  MetricsRegistry reg;
  MetricsHistory history;
  history.Record(reg.Snapshot(), 1000);
  engine.Evaluate(history, 1000);
  EXPECT_TRUE(engine.WatchdogEscalations().empty());

  // A fragment-scoped rule reads the rewritten per-fragment series.
  reg.GetCounter(FragmentMetricName("err", "SPARQL[AO]"))->Inc(5);
  reg.GetCounter("err")->Inc(5);
  history.Record(reg.Snapshot(), 2000);
  engine.Evaluate(history, 2000);
  ASSERT_EQ(engine.Snapshot().rules.size(), 2u);
  EXPECT_EQ(RuleState(engine, 0), "firing");
  EXPECT_EQ(RuleState(engine, 1), "firing");
  std::vector<std::pair<std::string, uint64_t>> esc =
      engine.WatchdogEscalations();
  ASSERT_EQ(esc.size(), 1u);  // only the rule with an escalation budget
  EXPECT_EQ(esc[0].first, "SPARQL[AO]");
  EXPECT_EQ(esc[0].second, 123u);

  // Once the breach ages out of the window, both resolve and the
  // escalation is withdrawn.
  history.Record(reg.Snapshot(), 5000);
  engine.Evaluate(history, 5000);
  EXPECT_EQ(RuleState(engine, 0), "resolved");
  EXPECT_TRUE(engine.WatchdogEscalations().empty());
}

TEST(AlertStateMachineTest, SnapshotToTextListsFiringFirst) {
  AlertEngine engine(MustParse(
      R"({"version":1,"rules":[
        {"name":"quiet","agg":"delta","op":">","threshold":1000,
         "metric":"err","windows":["2s"]},
        {"name":"loud","agg":"delta","op":">","threshold":0,
         "metric":"err","windows":["2s"],"severity":"page"}]})"));
  AlertHarness h;
  h.Tick(&engine, 0, 1000);
  h.Tick(&engine, 5, 2000);
  AlertSnapshot snap = engine.Snapshot();
  EXPECT_EQ(snap.FiringNow(), 1u);
  std::string text = snap.ToText();
  EXPECT_NE(text.find("1 firing"), std::string::npos);
  EXPECT_NE(text.find("loud"), std::string::npos);
  EXPECT_NE(text.find("quiet"), std::string::npos);
  EXPECT_LT(text.find("loud"), text.find("quiet"));  // firing rules first
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"firing\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

void LoadTinyGraph(Engine* engine) {
  std::string triples;
  for (int i = 0; i < 8; ++i) {
    triples += "s" + std::to_string(i) + " p o" + std::to_string(i) + " .\n";
  }
  ASSERT_TRUE(engine->LoadGraphText("g", triples).ok());
}

TEST(AlertEngineIntegrationTest, SetAlertRulesValidatesInput) {
  Engine engine;
  Status bad = engine.SetAlertRules("not json");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.ToString().find("alert rules"), std::string::npos);

  ASSERT_TRUE(engine
                  .SetAlertRules(
                      R"({"version":1,"rules":[{"name":"q","agg":"delta",
                          "metric":"engine.queries","op":">","threshold":0,
                          "windows":["10s"]}]})")
                  .ok());
  ASSERT_NE(engine.alerts(), nullptr);
  ASSERT_NE(engine.history(), nullptr);

  // Rules are frozen while a sampler borrows them.
  TelemetryOptions options;
  options.interval_ms = 0;
  ASSERT_TRUE(engine.StartTelemetry(options).ok());
  EXPECT_FALSE(engine.SetAlertRules(R"({"version":1,"rules":[]})").ok());
  EXPECT_FALSE(engine.ClearAlertRules().ok());
  engine.StopTelemetry();
  EXPECT_TRUE(engine.ClearAlertRules().ok());
  EXPECT_EQ(engine.alerts(), nullptr);
}

TEST(AlertEngineIntegrationTest, TicksEvaluateRulesAndExportCounters) {
  Engine engine;
  LoadTinyGraph(&engine);
  ASSERT_TRUE(engine
                  .SetAlertRules(
                      R"({"version":1,"rules":[{"name":"any-query",
                          "agg":"delta","metric":"engine.queries","op":">",
                          "threshold":0,"windows":["10s"],
                          "severity":"page"}]})")
                  .ok());
  TelemetryOptions options;
  options.interval_ms = 0;
  ASSERT_TRUE(engine.StartTelemetry(options).ok());
  engine.telemetry()->TickNow();  // baseline history sample

  Result<MappingSet> r = engine.Query("g", "(?x p ?y)");
  ASSERT_TRUE(r.ok());
  engine.telemetry()->TickNow();  // records the delta and evaluates

  AlertSnapshot snap = engine.AlertSnapshot();
  ASSERT_EQ(snap.rules.size(), 1u);
  EXPECT_EQ(snap.rules[0].state, "firing");
  EXPECT_EQ(snap.FiringNow(), 1u);

  RegistrySnapshot metrics = engine.MetricsSnapshot();
  EXPECT_EQ(metrics.counters.at("engine.alerts_pending"), 1u);
  EXPECT_EQ(metrics.counters.at("engine.alerts_fired"), 1u);
  EXPECT_EQ(metrics.counters.at("engine.alerts_resolved"), 0u);
  EXPECT_EQ(metrics.gauges.at("engine.alerts_firing"), 1);
  EXPECT_EQ(metrics.gauges.count("engine.uptime_seconds"), 1u);

  // The telemetry snapshot carries the alert panel to rdfql_top.
  TelemetrySnapshot tsnap = engine.telemetry()->Snapshot();
  EXPECT_TRUE(tsnap.has_alerts);
  ASSERT_EQ(tsnap.alerts.rules.size(), 1u);
  EXPECT_EQ(tsnap.alerts.rules[0].state, "firing");
  engine.StopTelemetry();
}

TEST(AlertEngineIntegrationTest, FragmentRulesKeyPerFragmentHistograms) {
  Engine engine;
  LoadTinyGraph(&engine);
  ASSERT_TRUE(engine
                  .SetAlertRules(
                      R"({"version":1,"rules":[{"name":"and-p99","agg":"p99",
                          "metric":"engine.eval_ns","fragment":"SPARQL[A]",
                          "op":">","threshold":"1h","windows":["10s"]}]})")
                  .ok());
  Result<MappingSet> a = engine.Query("g", "(?x p ?y) AND (?y p ?z)");
  ASSERT_TRUE(a.ok());
  Result<MappingSet> b = engine.Query("g", "(?x p ?y)");
  ASSERT_TRUE(b.ok());

  RegistrySnapshot metrics = engine.MetricsSnapshot();
  const std::string keyed =
      FragmentMetricName("engine.eval_ns", "SPARQL[A]");
  ASSERT_EQ(metrics.histograms.count(keyed), 1u);
  EXPECT_EQ(metrics.histograms.at(keyed).count, 1u);
  // Fragments no rule names are not recorded.
  EXPECT_EQ(metrics.histograms.count(
                FragmentMetricName("engine.eval_ns", "SPARQL[triple]")),
            0u);
}

TEST(AlertEngineIntegrationTest, FiringRuleEscalatesWatchdogBudget) {
  Engine engine;
  LoadTinyGraph(&engine);
  ASSERT_TRUE(engine
                  .SetAlertRules(
                      R"({"version":1,"rules":[{"name":"and-slow",
                          "agg":"p99","metric":"engine.eval_ns",
                          "fragment":"SPARQL[A]","op":">","threshold":0,
                          "windows":["10s"],
                          "escalate_watchdog_wall_ms":77}]})")
                  .ok());
  TelemetryOptions options;
  options.interval_ms = 0;
  ASSERT_TRUE(engine.StartTelemetry(options).ok());
  engine.telemetry()->TickNow();
  EXPECT_EQ(engine.telemetry()->EffectiveWatchdog().For("SPARQL[A]").max_wall_ms,
            0u);

  ASSERT_TRUE(engine.Query("g", "(?x p ?y) AND (?y p ?z)").ok());
  engine.telemetry()->TickNow();  // any observed latency breaches "> 0"

  ASSERT_EQ(engine.AlertSnapshot().rules[0].state, "firing");
  EXPECT_EQ(engine.telemetry()->EffectiveWatchdog().For("SPARQL[A]").max_wall_ms,
            77u);
  engine.StopTelemetry();
}

// ---------------------------------------------------------------------------
// Bit-identical results with history + alerting enabled, across strategies
// and thread counts
// ---------------------------------------------------------------------------

class AlertsIdenticalTest
    : public ::testing::TestWithParam<std::tuple<int, EvalOptions::Join>> {};

TEST_P(AlertsIdenticalTest, ResultsAreBitIdentical) {
  auto [threads, join] = GetParam();
  Engine engine;
  Rng rng(7);
  engine.PutGraph("g",
                  GenerateRandomGraph(240, 12, engine.dict(), &rng, "n"));
  const std::string query =
      "(((?x n_p0 ?y) AND (?y n_p1 ?z)) OPT (?z n_p2 ?w)) "
      "UNION (?x n_p0 ?y)";
  EvalOptions options;
  options.threads = threads;
  options.join = join;
  Result<MappingSet> off = engine.Query("g", query, options);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  // Rules cover the query's own fragment so the per-fragment observation
  // path is exercised, not just the evaluation loop.
  ASSERT_TRUE(engine
                  .SetAlertRules(
                      R"({"version":1,"rules":[
                        {"name":"qps","agg":"rate","metric":"engine.queries",
                         "op":">","threshold":1e18,"windows":["30s","5m"]},
                        {"name":"frag-p99","agg":"p99",
                         "metric":"engine.eval_ns",
                         "fragment":"SPARQL[AUO]","op":">","threshold":0,
                         "windows":["30s"]}]})")
                  .ok());
  TelemetryOptions topts;
  topts.interval_ms = 0;
  ASSERT_TRUE(engine.StartTelemetry(topts).ok());
  engine.telemetry()->TickNow();
  Result<MappingSet> on = engine.Query("g", query, options);
  engine.telemetry()->TickNow();
  engine.StopTelemetry();
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  // Bit-identical: same mappings in the same insertion order.
  EXPECT_EQ(*off, *on);
  EXPECT_EQ(off->mappings(), on->mappings()) << "order differs";
}

INSTANTIATE_TEST_SUITE_P(
    Threads, AlertsIdenticalTest,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(EvalOptions::Join::kHash,
                                         EvalOptions::Join::kNestedLoop,
                                         EvalOptions::Join::kIndexNestedLoop)));

}  // namespace
}  // namespace rdfql
