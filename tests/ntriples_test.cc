#include "rdf/ntriples.h"

#include <gtest/gtest.h>

namespace rdfql {
namespace {

TEST(NTriplesTest, ParsesPlainTriples) {
  Dictionary dict;
  Graph g;
  ASSERT_TRUE(ParseNTriples("a b c .\nd e f .", &dict, &g).ok());
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.Contains(Triple(dict.FindIri("a"), dict.FindIri("b"),
                                dict.FindIri("c"))));
}

TEST(NTriplesTest, TrailingDotIsOptional) {
  Dictionary dict;
  Graph g;
  ASSERT_TRUE(ParseNTriples("a b c", &dict, &g).ok());
  EXPECT_EQ(g.size(), 1u);
}

TEST(NTriplesTest, AngleBracketsAreStripped) {
  Dictionary dict;
  Graph g;
  ASSERT_TRUE(
      ParseNTriples("<http://x/a> <http://x/b> <http://x/c> .", &dict, &g)
          .ok());
  EXPECT_NE(dict.FindIri("http://x/a"), kInvalidTermId);
}

TEST(NTriplesTest, SkipsCommentsAndBlankLines) {
  Dictionary dict;
  Graph g;
  ASSERT_TRUE(ParseNTriples("# comment\n\n  a b c .\n", &dict, &g).ok());
  EXPECT_EQ(g.size(), 1u);
}

TEST(NTriplesTest, RejectsWrongArity) {
  Dictionary dict;
  Graph g;
  Status st = ParseNTriples("a b .", &dict, &g);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(NTriplesTest, RoundTripsThroughWriter) {
  Dictionary dict;
  Graph g;
  ASSERT_TRUE(ParseNTriples("a b c .\nx y z .", &dict, &g).ok());
  std::string text = WriteNTriples(g, dict);

  Dictionary dict2;
  Graph g2;
  ASSERT_TRUE(ParseNTriples(text, &dict2, &g2).ok());
  EXPECT_EQ(g2.size(), g.size());
}

}  // namespace
}  // namespace rdfql
