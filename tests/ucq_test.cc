// Tests of the UCQ normalization (Lemma C.7) and the UCQ → SPARQL
// translation (Theorem C.8), including the full Appendix C round trip
//   P ∈ SPARQL[AUFS]  →  ϕ_P  →  UCQ≠  →  Q ∈ SPARQL[AUFS]
// which must preserve ⟦·⟧G on (non-empty) graphs.

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "eval/evaluator.h"
#include "fo/fo_eval.h"
#include "fo/sparql_to_fo.h"
#include "fo/structure.h"
#include "fo/ucq.h"
#include "fo/ucq_to_sparql.h"
#include "parser/parser.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

class UcqTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Dictionary dict_;
};

// Lemma C.7 output shape: no Dom atoms (by construction of the types), and
// UcqToFormula must agree with the source formula on RDF structures.
TEST_F(UcqTest, NormalizationAgreesWithSourceFormula) {
  Rng rng(17);
  PatternGenSpec spec;
  spec.allow_filter = true;
  spec.allow_select = true;
  spec.max_depth = 2;
  spec.num_vars = 3;
  int checked = 0;
  for (int i = 0; i < 60 && checked < 12; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    if (p->Vars().size() > 3) continue;
    Result<FoFormulaPtr> phi = SparqlToFo(p);
    ASSERT_TRUE(phi.ok());
    if ((*phi)->SizeInNodes() > 400) continue;
    Result<Ucq> ucq = PositiveExistentialToUcq(*phi, p->Vars(), &dict_);
    ASSERT_TRUE(ucq.ok()) << ucq.status().ToString();
    // FO model checking is exponential in the existential variables, so
    // keep the round-trip instances small.
    if (ucq->disjuncts.size() > 60) continue;
    FoFormulaPtr back = UcqToFormula(*ucq);

    Graph g = GenerateRandomGraph(5, 3, &dict_, &rng, "i");
    if (g.empty()) continue;  // all-n disjuncts differ on the empty graph
    ++checked;
    FoStructure s(&g);
    std::vector<TermId> universe = g.Iris();
    universe.push_back(kNElement);
    for (int probe = 0; probe < 6; ++probe) {
      FoAssignment a;
      for (VarId v : p->Vars()) a[v] = rng.Pick(universe);
      EXPECT_EQ(FoEval(*phi, s, a), FoEval(back, s, a));
    }
  }
  EXPECT_GE(checked, 5);
}

TEST_F(UcqTest, RejectsNonPositiveExistential) {
  // An OPT pattern produces genuine negation over T/Dom — the normalizer
  // must refuse it.
  PatternPtr p = Parse("(?x a ?y) OPT (?y b ?z)");
  Result<FoFormulaPtr> phi = SparqlToFo(p);
  ASSERT_TRUE(phi.ok());
  Result<Ucq> ucq = PositiveExistentialToUcq(*phi, p->Vars(), &dict_);
  EXPECT_FALSE(ucq.ok());
  EXPECT_EQ(ucq.status().code(), StatusCode::kUnsupported);
}

// The full Appendix C round trip for AUFS patterns.
TEST_F(UcqTest, AppendixCRoundTripPreservesSemantics) {
  const char* queries[] = {
      "(?x p ?y)",
      "(?x p ?y) AND (?y p ?z)",
      "(?x p ?y) UNION ((?x q ?z) AND (?z p c))",
      "(SELECT {?x} WHERE (?x p ?y))",
      "(SELECT {?x ?z} WHERE ((?x p ?y) AND (?y q ?z)))",
      "((?x p ?y) FILTER !(?x = ?y)) UNION (?x q c)",
      "((?x p ?y) FILTER (?x = a | ?y = b))",
  };
  Rng rng(29);
  for (const char* query : queries) {
    PatternPtr p = Parse(query);
    Result<FoFormulaPtr> phi = SparqlToFo(p);
    ASSERT_TRUE(phi.ok()) << query;
    Result<Ucq> ucq = PositiveExistentialToUcq(*phi, p->Vars(), &dict_);
    ASSERT_TRUE(ucq.ok()) << query << ": " << ucq.status().ToString();
    Result<PatternPtr> q = UcqToSparql(*ucq, &dict_);
    ASSERT_TRUE(q.ok()) << query;
    EXPECT_TRUE(InFragment(q.value(), "AUFS")) << query;

    for (int trial = 0; trial < 8; ++trial) {
      Graph g = GenerateRandomGraph(10, 3, &dict_, &rng, "rt");
      if (g.empty()) continue;
      EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, q.value())) << query;
    }
  }
}

TEST_F(UcqTest, RandomAufsRoundTrip) {
  Rng rng(31);
  PatternGenSpec spec;
  spec.allow_filter = true;
  spec.allow_select = true;
  spec.max_depth = 2;
  spec.num_vars = 3;
  int checked = 0;
  for (int i = 0; i < 60 && checked < 25; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    if (p->Vars().size() > 4) continue;
    Result<FoFormulaPtr> phi = SparqlToFo(p);
    if (!phi.ok()) continue;
    Result<Ucq> ucq = PositiveExistentialToUcq(*phi, p->Vars(), &dict_);
    if (!ucq.ok()) {
      // Deep SELECT nestings legitimately exceed the normalization budget
      // (the construction is exponential); skip those instances.
      ASSERT_EQ(ucq.status().code(), StatusCode::kResourceExhausted);
      continue;
    }
    if (ucq->disjuncts.size() > 400) continue;
    Result<PatternPtr> q = UcqToSparql(*ucq, &dict_);
    ASSERT_TRUE(q.ok());
    ++checked;
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(9, 3, &dict_, &rng, "rr");
      if (g.empty()) continue;
      EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, q.value()));
    }
  }
  EXPECT_GE(checked, 10);
}

TEST_F(UcqTest, EmptyUcqIsUnsatisfiablePattern) {
  Ucq empty;
  Result<PatternPtr> q = UcqToSparql(empty, &dict_);
  ASSERT_TRUE(q.ok());
  Rng rng(5);
  Graph g = GenerateRandomGraph(6, 3, &dict_, &rng, "e");
  EXPECT_TRUE(EvalPattern(g, q.value()).empty());
}

}  // namespace
}  // namespace rdfql
