#include "eval/wd_evaluator.h"

#include <gtest/gtest.h>

#include "analysis/well_designed.h"
#include "eval/evaluator.h"
#include "parser/parser.h"
#include "rdf/ntriples.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"
#include "workload/scenarios.h"

namespace rdfql {
namespace {

class WdEvaluatorTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Graph Load(const char* text) {
    Graph g;
    Status st = ParseNTriples(text, &dict_, &g);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return g;
  }
  Dictionary dict_;
};

TEST_F(WdEvaluatorTest, RejectsNonWellDesigned) {
  Graph g;
  Result<MappingSet> r =
      EvalWellDesignedTopDown(g, Parse(scenarios::Example33Query()));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WdEvaluatorTest, MatchesBottomUpOnExample31) {
  Graph g1 = scenarios::ChileGraphG1(&dict_);
  Graph g2 = scenarios::ChileGraphG2(&dict_);
  PatternPtr p = Parse(scenarios::Example31Query());
  Result<MappingSet> r1 = EvalWellDesignedTopDown(g1, p);
  Result<MappingSet> r2 = EvalWellDesignedTopDown(g2, p);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(*r1, EvalPattern(g1, p));
  EXPECT_EQ(*r2, EvalPattern(g2, p));
}

TEST_F(WdEvaluatorTest, MultipleOptionalExtensionsAreAllKept) {
  // Two emails for one person: ⟕ keeps both combinations.
  Graph g = Load("a born chile .\na email m1 .\na email m2 .");
  PatternPtr p = Parse("(?x born chile) OPT (?x email ?e)");
  Result<MappingSet> r = EvalWellDesignedTopDown(g, p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(*r, EvalPattern(g, p));
}

TEST_F(WdEvaluatorTest, SiblingChildrenExtendIndependently) {
  Graph g = Load("a born chile .\na email m .\nb born chile .\nb phone t .");
  PatternPtr p = Parse(
      "((?x born chile) OPT (?x email ?e)) OPT (?x phone ?t)");
  Result<MappingSet> r = EvalWellDesignedTopDown(g, p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, EvalPattern(g, p));
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(WdEvaluatorTest, NestedChildrenSeedBindings) {
  Graph g = Load("a born chile .\na works org .\norg in city .");
  PatternPtr p = Parse(
      "(?x born chile) OPT ((?x works ?o) OPT (?o in ?c))");
  Result<MappingSet> r = EvalWellDesignedTopDown(g, p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, EvalPattern(g, p));
}

// The main property: agreement with the bottom-up engine on random
// well-designed patterns and random graphs.
TEST_F(WdEvaluatorTest, DifferentialAgainstBottomUp) {
  Rng rng(777);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.allow_filter = true;
  spec.max_depth = 4;
  int tested = 0;
  for (int i = 0; i < 400 && tested < 60; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    if (!IsWellDesigned(p)) continue;
    ++tested;
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(16, 4, &dict_, &rng, "wd");
      Result<MappingSet> top_down = EvalWellDesignedTopDown(g, p);
      ASSERT_TRUE(top_down.ok());
      EXPECT_EQ(*top_down, EvalPattern(g, p));
    }
  }
  EXPECT_GE(tested, 25);
}

}  // namespace
}  // namespace rdfql
