#include "transform/opt_rewriter.h"

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "eval/evaluator.h"
#include "eval/ns.h"
#include "parser/parser.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"
#include "workload/scenarios.h"

namespace rdfql {
namespace {

class OptRewriterTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Dictionary dict_;
};

TEST_F(OptRewriterTest, RewriteRemovesOpt) {
  PatternPtr p = Parse("((?x a ?y) OPT (?y b ?z)) OPT (?x c ?w)");
  PatternPtr q = RewriteOptToNs(p);
  EXPECT_FALSE(q->Uses(PatternKind::kOpt));
  EXPECT_TRUE(q->Uses(PatternKind::kNs));
}

// Section 5.1: ⟦NS(P1 ∪ (P1 AND P2))⟧ = ⟦P1 OPT P2⟧max — for
// subsumption-free inputs (e.g. well-designed ones) the two coincide.
TEST_F(OptRewriterTest, NsEncodingKeepsMaximalAnswersOfOpt) {
  Rng rng(2902298);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.allow_filter = true;
  spec.max_depth = 3;
  for (int i = 0; i < 50; ++i) {
    PatternPtr p1 = GenerateRandomPattern(spec, &dict_, &rng);
    PatternPtr p2 = GenerateRandomPattern(spec, &dict_, &rng);
    PatternPtr opt = Pattern::Opt(p1, p2);
    PatternPtr ns = Pattern::Ns(Pattern::Union(p1, Pattern::And(p1, p2)));
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "i");
      MappingSet opt_max = RemoveSubsumedNaive(EvalPattern(g, opt));
      EXPECT_EQ(opt_max, EvalPattern(g, ns));
    }
  }
}

TEST_F(OptRewriterTest, NsEncodingExactForWellDesignedExample) {
  PatternPtr p = Parse(scenarios::Example31Query());
  PatternPtr q = RewriteOptToNs(p);
  Graph g1 = scenarios::ChileGraphG1(&dict_);
  Graph g2 = scenarios::ChileGraphG2(&dict_);
  EXPECT_EQ(EvalPattern(g1, p), EvalPattern(g1, q));
  EXPECT_EQ(EvalPattern(g2, p), EvalPattern(g2, q));
}

TEST_F(OptRewriterTest, DesugarMinusMatchesPrimitiveMinus) {
  Rng rng(404);
  PatternGenSpec spec;
  spec.allow_minus = true;
  spec.allow_opt = true;
  spec.max_depth = 3;
  for (int i = 0; i < 50; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    PatternPtr q = DesugarMinus(p, &dict_);
    EXPECT_FALSE(q->Uses(PatternKind::kMinus));
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "i");
      MappingSet rp = EvalPattern(g, p);
      // The desugared form may bind the probe variables in intermediate
      // results but never in the final one (they are filtered unbound).
      EXPECT_EQ(rp, EvalPattern(g, q));
    }
  }
}

TEST_F(OptRewriterTest, MonotoneEnvelopeIsAufs) {
  PatternPtr p =
      Parse("NS(((?x a ?y) OPT (?y b ?z)) MINUS (?x c ?w)) UNION "
            "(SELECT {?x} WHERE (?x d ?v))");
  PatternPtr env = MonotoneEnvelope(p);
  EXPECT_TRUE(InFragment(env, "AUFS"));
}

TEST_F(OptRewriterTest, MonotoneEnvelopeContainsOriginal) {
  Rng rng(606);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_minus = spec.allow_ns = true;
  spec.allow_filter = spec.allow_select = true;
  spec.max_depth = 3;
  for (int i = 0; i < 50; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    PatternPtr env = MonotoneEnvelope(p);
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "i");
      MappingSet rp = EvalPattern(g, p);
      MappingSet re = EvalPattern(g, env);
      for (const Mapping& m : rp) {
        EXPECT_TRUE(re.Contains(m));
      }
    }
  }
}

}  // namespace
}  // namespace rdfql
