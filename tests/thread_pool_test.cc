#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace rdfql {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.ParallelFor(kTasks, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "task ran"; });
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  // num_threads = 1 spawns no workers; ParallelFor degenerates to a loop.
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> hits(64, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ThreadPoolTest, SlotPerTaskWritesAreRaceFree) {
  // The determinism idiom used by the evaluator kernels: task i owns
  // result slot i, results concatenated in index order afterwards.
  ThreadPool pool(8);
  constexpr size_t kTasks = 200;
  std::vector<std::vector<int>> slots(kTasks);
  pool.ParallelFor(kTasks, [&](size_t i) {
    for (int k = 0; k < 5; ++k) slots[i].push_back(static_cast<int>(i));
  });
  for (size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(slots[i].size(), 5u);
    for (int v : slots[i]) EXPECT_EQ(v, static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(17, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * 17);
}

TEST(ThreadPoolTest, ExceptionsNotRequired_TasksSeeDistinctIndices) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 333;
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(kTasks, [&](size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
}

}  // namespace
}  // namespace rdfql
