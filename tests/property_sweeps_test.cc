// Parameterized property sweeps: the same battery of invariants run over
// every language fragment × several random seeds. Each (fragment, seed)
// instantiation draws fresh patterns and graphs and checks:
//   1. the three join engines and the bucketed/naive NS agree,
//   2. the independent reference evaluator agrees,
//   3. evaluation over the CSR StaticGraph agrees with the mutable Graph,
//   4. the optimizer preserves semantics,
//   5. weakly-monotone-by-construction fragments are never refuted.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/monotonicity.h"
#include "eval/evaluator.h"
#include "eval/reference_evaluator.h"
#include "optimize/optimizer.h"
#include "rdf/static_graph.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

struct FragmentCase {
  const char* name;
  bool opt;
  bool filter;
  bool select;
  bool minus;
  bool ns;
  /// The fragment is weakly monotone by construction (AUFS-like or
  /// simple-pattern-like shapes).
  bool weakly_monotone_by_construction;
};

constexpr FragmentCase kFragments[] = {
    {"AU", false, false, false, false, false, true},
    {"AUF", false, true, false, false, false, true},
    {"AUFS", false, true, true, false, false, true},
    {"AUOF", true, true, false, false, false, false},
    {"AUOFS", true, true, true, false, false, false},
    {"full-NS-SPARQL", true, true, true, true, true, false},
};

using SweepParam = std::tuple<int /*fragment index*/, uint64_t /*seed*/>;

class PropertySweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  PropertySweep() {
    const FragmentCase& fragment = kFragments[std::get<0>(GetParam())];
    spec_.allow_opt = fragment.opt;
    spec_.allow_filter = fragment.filter;
    spec_.allow_select = fragment.select;
    spec_.allow_minus = fragment.minus;
    spec_.allow_ns = fragment.ns;
    spec_.max_depth = 3;
  }

  const FragmentCase& fragment() const {
    return kFragments[std::get<0>(GetParam())];
  }
  uint64_t seed() const { return std::get<1>(GetParam()); }

  Dictionary dict_;
  PatternGenSpec spec_;
};

TEST_P(PropertySweep, EnginesAgreeOnRandomInputs) {
  Rng rng(seed());
  EvalOptions nested;
  nested.join = EvalOptions::Join::kNestedLoop;
  nested.ns = EvalOptions::NsAlgo::kNaive;
  EvalOptions inl;
  inl.join = EvalOptions::Join::kIndexNestedLoop;
  for (int i = 0; i < 25; ++i) {
    PatternPtr p = GenerateRandomPattern(spec_, &dict_, &rng);
    Graph g = GenerateRandomGraph(14, 4, &dict_, &rng, "ps");
    MappingSet baseline = EvalPattern(g, p);
    EXPECT_EQ(baseline, EvalPattern(g, p, nested));
    EXPECT_EQ(baseline, EvalPattern(g, p, inl));
    EXPECT_EQ(baseline, ReferenceEval(g, p));
    StaticGraph sg = StaticGraph::Build(g);
    EXPECT_EQ(baseline, Evaluator(&sg).Eval(p));
  }
}

TEST_P(PropertySweep, OptimizerPreservesSemantics) {
  Rng rng(seed() + 1);
  for (int i = 0; i < 20; ++i) {
    PatternPtr p = GenerateRandomPattern(spec_, &dict_, &rng);
    Graph g = GenerateRandomGraph(14, 4, &dict_, &rng, "po");
    GraphStats stats = GraphStats::Collect(g);
    Optimizer opt(&stats);
    EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, opt.Optimize(p)));
  }
}

TEST_P(PropertySweep, MonotoneFragmentsAreNeverRefuted) {
  if (!fragment().weakly_monotone_by_construction) {
    GTEST_SKIP() << "fragment admits non-weakly-monotone patterns";
  }
  Rng rng(seed() + 2);
  MonotonicityOptions opts;
  opts.trials = 60;
  opts.seed = seed() + 3;
  for (int i = 0; i < 10; ++i) {
    PatternPtr p = GenerateRandomPattern(spec_, &dict_, &rng);
    EXPECT_FALSE(
        FindWeakMonotonicityCounterexample(p, &dict_, opts).has_value());
    // These fragments are in fact monotone.
    EXPECT_FALSE(
        FindMonotonicityCounterexample(p, &dict_, opts).has_value());
  }
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const FragmentCase& fragment = kFragments[std::get<0>(info.param)];
  std::string name = fragment.name;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllFragments, PropertySweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(uint64_t{11}, uint64_t{23},
                                         uint64_t{47})),
    SweepName);

}  // namespace
}  // namespace rdfql
