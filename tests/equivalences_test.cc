// Algebraic equivalences of SPARQL/NS-SPARQL graph patterns (the identity
// toolbox of the foundations literature [29]/[37] plus NS laws), each
// verified over random patterns and random graphs. These are the
// identities the transformations in src/transform rely on.

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "parser/parser.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

class EquivalencesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.allow_opt = spec_.allow_filter = true;
    spec_.max_depth = 2;
  }

  // Checks ⟦a⟧G = ⟦b⟧G over `trials` random graphs.
  void ExpectEquivalent(const PatternPtr& a, const PatternPtr& b,
                        int trials = 6) {
    for (int t = 0; t < trials; ++t) {
      Graph g = GenerateRandomGraph(14, 4, &dict_, &rng_, "e");
      EXPECT_EQ(EvalPattern(g, a), EvalPattern(g, b));
    }
  }

  PatternPtr Rand() { return GenerateRandomPattern(spec_, &dict_, &rng_); }

  BuiltinPtr RandCond(const PatternPtr& p) {
    if (p->Vars().empty()) return Builtin::True();
    VarId v = p->Vars()[rng_.NextBelow(p->Vars().size())];
    switch (rng_.NextBelow(3)) {
      case 0:
        return Builtin::Bound(v);
      case 1:
        return Builtin::EqConst(v, dict_.InternIri("i0"));
      default:
        return Builtin::Not(Builtin::Bound(v));
    }
  }

  Dictionary dict_;
  Rng rng_{424242};
  PatternGenSpec spec_;
};

TEST_F(EquivalencesTest, AndIsCommutativeAndAssociative) {
  for (int i = 0; i < 15; ++i) {
    PatternPtr a = Rand(), b = Rand(), c = Rand();
    ExpectEquivalent(Pattern::And(a, b), Pattern::And(b, a));
    ExpectEquivalent(Pattern::And(Pattern::And(a, b), c),
                     Pattern::And(a, Pattern::And(b, c)));
  }
}

TEST_F(EquivalencesTest, UnionIsCommutativeAndAssociative) {
  for (int i = 0; i < 15; ++i) {
    PatternPtr a = Rand(), b = Rand(), c = Rand();
    ExpectEquivalent(Pattern::Union(a, b), Pattern::Union(b, a));
    ExpectEquivalent(Pattern::Union(Pattern::Union(a, b), c),
                     Pattern::Union(a, Pattern::Union(b, c)));
  }
}

TEST_F(EquivalencesTest, AndDistributesOverUnion) {
  for (int i = 0; i < 15; ++i) {
    PatternPtr a = Rand(), b = Rand(), c = Rand();
    ExpectEquivalent(
        Pattern::And(Pattern::Union(a, b), c),
        Pattern::Union(Pattern::And(a, c), Pattern::And(b, c)));
  }
}

TEST_F(EquivalencesTest, OptDistributesOverLeftUnion) {
  for (int i = 0; i < 15; ++i) {
    PatternPtr a = Rand(), b = Rand(), c = Rand();
    ExpectEquivalent(
        Pattern::Opt(Pattern::Union(a, b), c),
        Pattern::Union(Pattern::Opt(a, c), Pattern::Opt(b, c)));
  }
}

TEST_F(EquivalencesTest, FilterDistributesOverUnion) {
  for (int i = 0; i < 15; ++i) {
    PatternPtr a = Rand(), b = Rand();
    BuiltinPtr r = RandCond(Pattern::Union(a, b));
    ExpectEquivalent(
        Pattern::Filter(Pattern::Union(a, b), r),
        Pattern::Union(Pattern::Filter(a, r), Pattern::Filter(b, r)));
  }
}

TEST_F(EquivalencesTest, FilterConjunctionSplits) {
  for (int i = 0; i < 15; ++i) {
    PatternPtr a = Rand();
    BuiltinPtr r1 = RandCond(a);
    BuiltinPtr r2 = RandCond(a);
    ExpectEquivalent(Pattern::Filter(a, Builtin::And(r1, r2)),
                     Pattern::Filter(Pattern::Filter(a, r1), r2));
    // Filters commute.
    ExpectEquivalent(Pattern::Filter(Pattern::Filter(a, r1), r2),
                     Pattern::Filter(Pattern::Filter(a, r2), r1));
  }
}

TEST_F(EquivalencesTest, MinusLaws) {
  for (int i = 0; i < 15; ++i) {
    PatternPtr a = Rand(), b = Rand(), c = Rand();
    // P1 ∖ (P2 ∪ P3) ≡ (P1 ∖ P2) ∖ P3.
    ExpectEquivalent(
        Pattern::Minus(a, Pattern::Union(b, c)),
        Pattern::Minus(Pattern::Minus(a, b), c));
    // (P1 ∪ P2) ∖ P3 ≡ (P1 ∖ P3) ∪ (P2 ∖ P3).
    ExpectEquivalent(
        Pattern::Minus(Pattern::Union(a, b), c),
        Pattern::Union(Pattern::Minus(a, c), Pattern::Minus(b, c)));
    // MINUS right side order is irrelevant.
    ExpectEquivalent(
        Pattern::Minus(Pattern::Minus(a, b), c),
        Pattern::Minus(Pattern::Minus(a, c), b));
  }
}

TEST_F(EquivalencesTest, OptDecomposesIntoJoinPlusMinus) {
  for (int i = 0; i < 15; ++i) {
    PatternPtr a = Rand(), b = Rand();
    ExpectEquivalent(
        Pattern::Opt(a, b),
        Pattern::Union(Pattern::And(a, b), Pattern::Minus(a, b)));
  }
}

TEST_F(EquivalencesTest, NsIsIdempotent) {
  for (int i = 0; i < 15; ++i) {
    PatternPtr a = Rand();
    ExpectEquivalent(Pattern::Ns(Pattern::Ns(a)), Pattern::Ns(a));
  }
}

TEST_F(EquivalencesTest, InnerNsAbsorbsUnderOuterNs) {
  // NS(P1 ∪ NS(P2)) ≡ NS(P1 ∪ P2): replacing a subresult by its maximal
  // answers does not change the overall maximal answers.
  for (int i = 0; i < 15; ++i) {
    PatternPtr a = Rand(), b = Rand();
    ExpectEquivalent(
        Pattern::Ns(Pattern::Union(a, Pattern::Ns(b))),
        Pattern::Ns(Pattern::Union(a, b)));
  }
}

TEST_F(EquivalencesTest, SelectComposition) {
  for (int i = 0; i < 15; ++i) {
    PatternPtr a = Rand();
    const std::vector<VarId>& vars = a->ScopeVars();
    std::vector<VarId> v1, v2;
    for (VarId v : vars) {
      if (rng_.NextBool(0.7)) v1.push_back(v);
      if (rng_.NextBool(0.7)) v2.push_back(v);
    }
    std::vector<VarId> both;
    std::set_intersection(v1.begin(), v1.end(), v2.begin(), v2.end(),
                          std::back_inserter(both));
    ExpectEquivalent(
        Pattern::Select(v1, Pattern::Select(v2, a)),
        Pattern::Select(both, a));
    // Projecting onto all variables is the identity.
    ExpectEquivalent(Pattern::Select(a->Vars(), a), a);
  }
}

TEST_F(EquivalencesTest, FilterDoesNotCommuteWithNs) {
  // Deliberate negative result: FILTER(NS(P), R) and NS(FILTER(P, R))
  // differ — filtering first can promote a previously subsumed answer to
  // maximal. Concrete witness:
  Dictionary& d = dict_;
  TermId a = d.InternIri("a"), b = d.InternIri("b"), c = d.InternIri("c");
  TermId s = d.InternIri("s"), m = d.InternIri("m");
  VarId x = d.InternVar("nx"), y = d.InternVar("ny");
  Graph g;
  g.Insert(s, a, b);
  g.Insert(s, c, m);
  // P = (?x a b) ∪ ((?x a b) AND (?x c ?y)); R = !bound(?y).
  PatternPtr base = Pattern::MakeTriple(Term::Var(x), Term::Iri(a),
                                        Term::Iri(b));
  PatternPtr ext = Pattern::And(
      base, Pattern::MakeTriple(Term::Var(x), Term::Iri(c), Term::Var(y)));
  PatternPtr p = Pattern::Union(base, ext);
  BuiltinPtr r = Builtin::Not(Builtin::Bound(y));
  MappingSet filter_after = EvalPattern(g, Pattern::Filter(Pattern::Ns(p), r));
  MappingSet filter_before = EvalPattern(g, Pattern::Ns(Pattern::Filter(p, r)));
  EXPECT_TRUE(filter_after.empty());
  EXPECT_EQ(filter_before.size(), 1u);
}

}  // namespace
}  // namespace rdfql
