// Tests of the FO substrate: formulas, structures, model checking, and the
// SPARQL → FO translation of Lemmas C.1/C.2.

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "fo/fo_eval.h"
#include "fo/sparql_to_fo.h"
#include "fo/structure.h"
#include "parser/parser.h"
#include "rdf/ntriples.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

class FoTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Graph Load(const char* text) {
    Graph g;
    Status st = ParseNTriples(text, &dict_, &g);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return g;
  }
  Dictionary dict_;
};

TEST_F(FoTest, StructureInterpretsTAndDom) {
  Graph g = Load("a p b .");
  FoStructure s(&g);
  TermId a = dict_.FindIri("a"), p = dict_.FindIri("p"),
         b = dict_.FindIri("b");
  EXPECT_TRUE(s.HoldsT(a, p, b));
  EXPECT_FALSE(s.HoldsT(b, p, a));
  EXPECT_TRUE(s.HoldsDom(a));
  EXPECT_FALSE(s.HoldsDom(kNElement));
  // Universe = I(G) ∪ {N}.
  EXPECT_EQ(s.Universe().size(), 4u);
}

TEST_F(FoTest, FormulaConstructionFolds) {
  EXPECT_EQ(FoFormula::Eq(FoTerm::Const(1), FoTerm::Const(1))->kind(),
            FoFormula::Kind::kTrue);
  EXPECT_EQ(FoFormula::Eq(FoTerm::Const(1), FoTerm::Const(2))->kind(),
            FoFormula::Kind::kFalse);
  EXPECT_EQ(FoFormula::Eq(FoTerm::N(), FoTerm::Const(2))->kind(),
            FoFormula::Kind::kFalse);
  EXPECT_EQ(FoFormula::And({FoFormula::True(), FoFormula::True()})->kind(),
            FoFormula::Kind::kTrue);
  EXPECT_EQ(FoFormula::Or({})->kind(), FoFormula::Kind::kFalse);
}

TEST_F(FoTest, ExistsQuantifiesOverUniverse) {
  Graph g = Load("a p b .\nc p d .");
  FoStructure s(&g);
  VarId x = dict_.InternVar("x");
  VarId y = dict_.InternVar("y");
  // ∃x,y. T(x, p, y)
  FoFormulaPtr f = FoFormula::Exists(
      {x, y}, FoFormula::T(FoTerm::Var(x), FoTerm::Const(dict_.FindIri("p")),
                           FoTerm::Var(y)));
  EXPECT_TRUE(FoEval(f, s, {}));
  // ∃x. T(x, x, x)
  FoFormulaPtr g2 = FoFormula::Exists(
      {x}, FoFormula::T(FoTerm::Var(x), FoTerm::Var(x), FoTerm::Var(x)));
  EXPECT_FALSE(FoEval(g2, s, {}));
}

TEST_F(FoTest, ExistsShadowsOuterBinding) {
  Graph g = Load("a p b .");
  FoStructure s(&g);
  VarId x = dict_.InternVar("x");
  // With x bound to N outside, ∃x.Dom(x) must still hold.
  FoFormulaPtr f = FoFormula::Exists({x}, FoFormula::Dom(FoTerm::Var(x)));
  FoAssignment outer{{x, kNElement}};
  EXPECT_TRUE(FoEval(f, s, outer));
  // And x=n evaluated afterwards still sees the outer binding.
  FoFormulaPtr both = FoFormula::And(
      {f, FoFormula::Eq(FoTerm::Var(x), FoTerm::N())});
  EXPECT_TRUE(FoEval(both, s, outer));
}

// The central Lemma C.2 property: µ ∈ ⟦P⟧G ⇔ G_FO ⊨ ϕ_P(t^P_µ), checked
// for every candidate mapping over small universes.
TEST_F(FoTest, LemmaC2OnCuratedPatterns) {
  const char* queries[] = {
      "(?x p ?y)",
      "(?x p ?y) AND (?y p ?z)",
      "(?x p ?y) UNION (?x q ?z)",
      "(?x p ?y) OPT (?y q ?z)",
      "(?x p ?y) MINUS (?y q ?z)",
      "(SELECT {?x} WHERE (?x p ?y))",
      "((?x p ?y) FILTER (bound(?x) & !(?x = ?y)))",
      "NS((?x p ?y) UNION ((?x p ?y) AND (?x q ?z)))",
      "((?x p ?y) OPT (?y q ?z)) UNION (?x r ?w)",
  };
  Graph g = Load("a p b .\nb p c .\nb q d .\na q a .\na r b .");
  FoStructure s(&g);

  for (const char* query : queries) {
    PatternPtr p = Parse(query);
    Result<FoFormulaPtr> phi = SparqlToFo(p);
    ASSERT_TRUE(phi.ok()) << phi.status().ToString();

    MappingSet answers = EvalPattern(g, p);
    // Enumerate every assignment of var(P) into I(G) ∪ {N} and compare.
    const std::vector<VarId>& vars = p->Vars();
    std::vector<TermId> universe = g.Iris();
    universe.push_back(kNElement);
    std::vector<size_t> idx(vars.size(), 0);
    for (;;) {
      Mapping m;
      for (size_t i = 0; i < vars.size(); ++i) {
        if (universe[idx[i]] != kNElement) m.Set(vars[i], universe[idx[i]]);
      }
      FoAssignment t = TupleAssignment(m, vars);
      EXPECT_EQ(answers.Contains(m), FoEval(*phi, s, t))
          << query << " with " << m.ToString(dict_);
      size_t i = 0;
      while (i < idx.size()) {
        if (++idx[i] < universe.size()) break;
        idx[i] = 0;
        ++i;
      }
      if (i == idx.size() || vars.empty()) break;
    }
  }
}

// Randomized Lemma C.2: answers of P over random graphs always satisfy
// ϕ_P, and sampled non-answers do not.
TEST_F(FoTest, LemmaC2OnRandomPatterns) {
  Rng rng(14);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.allow_minus = spec.allow_ns = true;
  spec.max_depth = 2;
  spec.num_vars = 3;
  for (int i = 0; i < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    if (p->Vars().size() > 4) continue;
    Result<FoFormulaPtr> phi = SparqlToFo(p);
    ASSERT_TRUE(phi.ok());
    Graph g = GenerateRandomGraph(8, 3, &dict_, &rng, "i");
    FoStructure s(&g);
    MappingSet answers = EvalPattern(g, p);
    for (const Mapping& m : answers) {
      EXPECT_TRUE(FoEval(*phi, s, TupleAssignment(m, p->Vars())));
    }
    // Sample some random mappings and check agreement.
    std::vector<TermId> universe = g.Iris();
    universe.push_back(kNElement);
    for (int probe = 0; probe < 10; ++probe) {
      Mapping m;
      for (VarId v : p->Vars()) {
        TermId value = rng.Pick(universe);
        if (value != kNElement) m.Set(v, value);
      }
      EXPECT_EQ(answers.Contains(m),
                FoEval(*phi, s, TupleAssignment(m, p->Vars())));
    }
  }
}

// Direct unit tests of the φ^P_X family (Lemma C.1) — each operator case
// checked against a hand-computed truth on a tiny graph.
TEST_F(FoTest, BuildPhiXCases) {
  Graph g = Load("a p b .\nb q c .");
  FoStructure s(&g);
  VarId x = dict_.InternVar("cx");
  VarId y = dict_.InternVar("cy");
  TermId a = dict_.FindIri("a"), b = dict_.FindIri("b"),
         p = dict_.FindIri("p"), q = dict_.FindIri("q");

  PatternPtr triple = Pattern::MakeTriple(Term::Var(x), Term::Iri(p),
                                          Term::Var(y));
  // X = var(t): T ∧ Dom.
  Result<FoFormulaPtr> phi_full = BuildPhiX(triple, {x, y});
  ASSERT_TRUE(phi_full.ok());
  EXPECT_TRUE(FoEval(*phi_full, s, {{x, a}, {y, b}}));
  EXPECT_FALSE(FoEval(*phi_full, s, {{x, b}, {y, a}}));
  // X ⊊ var(t): contradiction.
  Result<FoFormulaPtr> phi_partial = BuildPhiX(triple, {x});
  ASSERT_TRUE(phi_partial.ok());
  EXPECT_EQ((*phi_partial)->kind(), FoFormula::Kind::kFalse);

  // UNION: either disjunct's binding profile.
  PatternPtr u = Pattern::Union(
      triple, Pattern::MakeTriple(Term::Var(x), Term::Iri(q), Term::Var(y)));
  Result<FoFormulaPtr> phi_u = BuildPhiX(u, {x, y});
  ASSERT_TRUE(phi_u.ok());
  EXPECT_TRUE(FoEval(*phi_u, s, {{x, a}, {y, b}}));
  EXPECT_TRUE(FoEval(*phi_u, s, {{x, b}, {y, dict_.FindIri("c")}}));
  EXPECT_FALSE(FoEval(*phi_u, s, {{x, a}, {y, a}}));

  // MINUS: left minus compatible right.
  PatternPtr m = Pattern::Minus(
      triple,
      Pattern::MakeTriple(Term::Var(y), Term::Iri(q), Term::Var(x)));
  Result<FoFormulaPtr> phi_m = BuildPhiX(m, {x, y});
  ASSERT_TRUE(phi_m.ok());
  // (a p b) survives unless some (b q ?x-compatible) exists — (b q c)
  // binds ?x to c ≠ a, hence incompatible? No: the right side binds BOTH
  // y and x; compatibility requires x = c and y = b. For µ = [x→a, y→b]
  // the right's x must equal a, and (b q a) ∉ G, so µ survives.
  EXPECT_TRUE(FoEval(*phi_m, s, {{x, a}, {y, b}}));
}

TEST_F(FoTest, SparqlToFoRejectsTooManyVariables) {
  std::string q = "(?a0 p ?a1)";
  for (int i = 1; i <= 6; ++i) {
    q = "(" + q + " AND (?a" + std::to_string(i * 2) + " p ?a" +
        std::to_string(i * 2 + 1) + "))";
  }
  Result<FoFormulaPtr> r = SparqlToFo(Parse(q), /*max_vars=*/10);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace rdfql
