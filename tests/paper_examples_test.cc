// Integration tests reproducing, verbatim, the worked examples of the
// paper: the result tables of Examples 2.2, 3.1, 3.3 and 6.1 and the
// behaviour of the witness patterns in the proofs of Theorems 3.5 and 3.6.

#include <gtest/gtest.h>

#include "analysis/well_designed.h"
#include "construct/construct_query.h"
#include "core/engine.h"
#include "eval/evaluator.h"
#include "workload/scenarios.h"

namespace rdfql {
namespace {

class PaperExamplesTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = engine_.Parse(text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }

  Mapping Make(std::vector<std::pair<std::string, std::string>> bindings) {
    std::vector<std::pair<VarId, TermId>> ids;
    for (const auto& [var, iri] : bindings) {
      ids.emplace_back(engine_.dict()->InternVar(var),
                       engine_.dict()->InternIri(iri));
    }
    return Mapping::FromBindings(std::move(ids));
  }

  Engine engine_;
};

// Example 2.2 over the Figure 1 graph: the founders and supporters of
// organizations standing for sharing rights.
TEST_F(PaperExamplesTest, Example22FoundersAndSupporters) {
  Graph g = scenarios::PirateBayGraph(engine_.dict());
  MappingSet r = EvalPattern(g, Parse(scenarios::Example22Query()));

  // The paper's final table: four people.
  EXPECT_EQ(r.size(), 4u);
  EXPECT_TRUE(r.Contains(Make({{"p", "Gottfrid_Svartholm"}})));
  EXPECT_TRUE(r.Contains(Make({{"p", "Fredrik_Neij"}})));
  EXPECT_TRUE(r.Contains(Make({{"p", "Peter_Sunde"}})));
  EXPECT_TRUE(r.Contains(Make({{"p", "Carl_Lundstrom"}})));
}

// Example 2.2's intermediate table: the UNION before the SELECT.
TEST_F(PaperExamplesTest, Example22IntermediateUnion) {
  Graph g = scenarios::PirateBayGraph(engine_.dict());
  MappingSet r = EvalPattern(
      g, Parse("((?o stands_for sharing_rights) AND "
               "((?p founder ?o) UNION (?p supporter ?o)))"));
  EXPECT_EQ(r.size(), 4u);
  EXPECT_TRUE(
      r.Contains(Make({{"p", "Peter_Sunde"}, {"o", "The_Pirate_Bay"}})));
  EXPECT_TRUE(
      r.Contains(Make({{"p", "Carl_Lundstrom"}, {"o", "The_Pirate_Bay"}})));
}

// Example 3.1: P = (?X born Chile) OPT (?X email ?Y) over G1 and G2.
TEST_F(PaperExamplesTest, Example31OptionalEmail) {
  Graph g1 = scenarios::ChileGraphG1(engine_.dict());
  Graph g2 = scenarios::ChileGraphG2(engine_.dict());
  ASSERT_TRUE(g1.IsSubsetOf(g2));

  PatternPtr p = Parse(scenarios::Example31Query());
  MappingSet r1 = EvalPattern(g1, p);
  MappingSet r2 = EvalPattern(g2, p);

  // ⟦P⟧G1 = { [X → Juan] }.
  EXPECT_EQ(r1.size(), 1u);
  EXPECT_TRUE(r1.Contains(Make({{"X", "Juan"}})));
  // ⟦P⟧G2 = { [X → Juan, Y → juan@puc.cl] }.
  EXPECT_EQ(r2.size(), 1u);
  EXPECT_TRUE(r2.Contains(Make({{"X", "Juan"}, {"Y", "juan@puc.cl"}})));

  // Not monotone (µ1 lost) but weakly monotone (µ1 subsumed).
  EXPECT_FALSE(r2.Contains(Make({{"X", "Juan"}})));
  EXPECT_TRUE(MappingSet::Subsumed(r1, r2));
  // And the pattern is well designed (Section 3.2).
  EXPECT_TRUE(IsWellDesigned(p));
}

// Example 3.3: the non-weakly-monotone pattern.
TEST_F(PaperExamplesTest, Example33NotWeaklyMonotone) {
  Graph g1 = scenarios::ChileGraphG1(engine_.dict());
  Graph g2 = scenarios::ChileGraphG2(engine_.dict());

  PatternPtr p = Parse(scenarios::Example33Query());
  MappingSet r1 = EvalPattern(g1, p);
  MappingSet r2 = EvalPattern(g2, p);

  // ⟦P⟧G1 = { [X → Juan, Y → Juan] }.
  EXPECT_EQ(r1.size(), 1u);
  EXPECT_TRUE(r1.Contains(Make({{"X", "Juan"}, {"Y", "Juan"}})));
  // ⟦P⟧G2 = ∅ — the answer vanished when information was added.
  EXPECT_TRUE(r2.empty());
  EXPECT_FALSE(MappingSet::Subsumed(r1, r2));

  // The pattern is not well designed (Section 3.2's analysis).
  std::string why;
  EXPECT_FALSE(IsWellDesigned(p, &why));
}

// The intermediate step of Example 3.3: over G2 the inner OPT produces
// [Y → Juan, X → juan@puc.cl].
TEST_F(PaperExamplesTest, Example33InnerOptOverG2) {
  Graph g2 = scenarios::ChileGraphG2(engine_.dict());
  MappingSet r = EvalPattern(
      g2, Parse("((?Y was_born_in Chile) OPT (?Y email ?X))"));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Make({{"Y", "Juan"}, {"X", "juan@puc.cl"}})));
}

// Theorem 3.5 witness behaviour (Appendix A): over G1 = {(a,b,c),(l,e,f)}
// and G2 = {(a,b,c),(l,g,h)} the pattern answers [X → l] and [Y → l]
// respectively, and over G = {(a,b,c)} it answers nothing.
TEST_F(PaperExamplesTest, Theorem35WitnessBehaviour) {
  PatternPtr p = Parse(scenarios::Theorem35Witness());
  // The pattern is in SPARQL[AOF] but NOT well designed (the FILTER
  // mentions ?X, ?Y outside their OPT scopes), yet it is weakly monotone.
  std::string why;
  EXPECT_FALSE(IsWellDesigned(p, &why));

  Engine& e = engine_;
  ASSERT_TRUE(e.LoadGraphText("g1", "a b c .\nl e f .").ok());
  ASSERT_TRUE(e.LoadGraphText("g2", "a b c .\nl g h .").ok());
  ASSERT_TRUE(e.LoadGraphText("g", "a b c .").ok());

  // Over {(a,b,c), (l,e,f)}: the OPT arms bind nothing (no (?,d,e) or
  // (?,f,g) triples), so the FILTER kills everything... unless a triple
  // matches. Build the graphs that do trigger the arms:
  ASSERT_TRUE(e.LoadGraphText("h1", "a b c .\nl d e .").ok());
  ASSERT_TRUE(e.LoadGraphText("h2", "a b c .\nl f g .").ok());

  Result<MappingSet> r1 = e.Eval("h1", p);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->size(), 1u);
  EXPECT_TRUE(r1->Contains(Make({{"X", "l"}})));

  Result<MappingSet> r2 = e.Eval("h2", p);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 1u);
  EXPECT_TRUE(r2->Contains(Make({{"Y", "l"}})));

  Result<MappingSet> r = e.Eval("g", p);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

// Theorem 3.6 witness behaviour (Appendix B): the four graphs G1..G4.
TEST_F(PaperExamplesTest, Theorem36WitnessBehaviour) {
  PatternPtr p = Parse(scenarios::Theorem36Witness());
  Engine& e = engine_;
  ASSERT_TRUE(e.LoadGraphText("g1", "1 a b .").ok());
  ASSERT_TRUE(e.LoadGraphText("g2", "1 a b .\n1 c 2 .").ok());
  ASSERT_TRUE(e.LoadGraphText("g3", "1 a b .\n1 d 3 .").ok());
  ASSERT_TRUE(e.LoadGraphText("g4", "1 a b .\n1 c 2 .\n1 d 3 .").ok());

  Result<MappingSet> r1 = e.Eval("g1", p);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, MappingSet::FromList({Make({{"X", "1"}})}));

  Result<MappingSet> r2 = e.Eval("g2", p);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, MappingSet::FromList({Make({{"X", "1"}, {"Y", "2"}})}));

  Result<MappingSet> r3 = e.Eval("g3", p);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, MappingSet::FromList({Make({{"X", "1"}, {"Z", "3"}})}));

  Result<MappingSet> r4 = e.Eval("g4", p);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(*r4, MappingSet::FromList({Make({{"X", "1"}, {"Y", "2"}}),
                                       Make({{"X", "1"}, {"Z", "3"}})}));
}

// Example 6.1: the CONSTRUCT query over the Figure 3 graph produces the
// Figure 4 graph.
TEST_F(PaperExamplesTest, Example61Construct) {
  Graph g = scenarios::ProfessorsGraph(engine_.dict());
  Result<ConstructQuery> q =
      engine_.ParseConstructQuery(scenarios::Example61ConstructQuery());
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  Graph out = q->Answer(g);

  Dictionary* d = engine_.dict();
  auto iri = [d](const char* s) { return d->InternIri(s); };
  // Figure 4's triples.
  EXPECT_TRUE(out.Contains(Triple(iri("Denis"), iri("affiliated_to"),
                                  iri("PUC_Chile"))));
  EXPECT_TRUE(out.Contains(Triple(iri("Cristian"), iri("affiliated_to"),
                                  iri("U_Oxford"))));
  EXPECT_TRUE(out.Contains(Triple(iri("Cristian"), iri("affiliated_to"),
                                  iri("PUC_Chile"))));
  EXPECT_TRUE(out.Contains(
      Triple(iri("Cristian"), iri("email"), iri("cris@puc.cl"))));
  // Denis has no email triple; the set has exactly these four.
  EXPECT_EQ(out.size(), 4u);
}

// The pattern of Example 6.1 yields the three mappings µ1, µ2, µ3 of the
// in-text table.
TEST_F(PaperExamplesTest, Example61PatternTable) {
  Graph g = scenarios::ProfessorsGraph(engine_.dict());
  MappingSet r = EvalPattern(
      g, Parse("(((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e))"));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.Contains(
      Make({{"p", "prof_02"}, {"n", "Denis"}, {"u", "PUC_Chile"}})));
  EXPECT_TRUE(r.Contains(Make({{"p", "prof_01"},
                               {"n", "Cristian"},
                               {"u", "U_Oxford"},
                               {"e", "cris@puc.cl"}})));
  EXPECT_TRUE(r.Contains(Make({{"p", "prof_01"},
                               {"n", "Cristian"},
                               {"u", "PUC_Chile"},
                               {"e", "cris@puc.cl"}})));
}

}  // namespace
}  // namespace rdfql
