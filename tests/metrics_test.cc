#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/engine.h"

namespace rdfql {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, BucketsArePowersOfTwo) {
  Histogram h;
  h.Observe(0);     // bucket 0: [0, 1)
  h.Observe(1);     // bucket 1: [1, 2)
  h.Observe(7);     // bucket 3: [4, 8)
  h.Observe(8);     // bucket 4: [8, 16)
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 16u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.BucketCount(4), 1u);
  // Each bound is exclusive: value 8 must land above bound 8.
  EXPECT_EQ(Histogram::BucketBound(3), 8u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.BucketCount(3), 0u);
}

TEST(HistogramTest, HugeValuesClampToLastBucket) {
  Histogram h;
  h.Observe(~uint64_t{0});
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.BucketCount(Histogram::kNumBuckets - 1), 1u);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  Histogram h;
  for (int i = 0; i < 4; ++i) h.Observe(1);  // all in [1, 2)
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 2.0);
}

TEST(HistogramTest, PercentileBucketZeroSpansZeroToOne) {
  Histogram h;
  h.Observe(0);
  h.Observe(0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.5);
}

TEST(HistogramTest, PercentileCrossesBuckets) {
  Histogram h;
  h.Observe(1);  // two in [1, 2)
  h.Observe(1);
  h.Observe(7);  // two in [4, 8)
  h.Observe(7);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 2.0);   // rank 2 tops out bucket one
  EXPECT_DOUBLE_EQ(h.Percentile(0.75), 6.0);  // halfway into [4, 8)
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 8.0);
  // Out-of-range q clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(h.Percentile(-1.0), h.Percentile(0.0));
  EXPECT_DOUBLE_EQ(h.Percentile(2.0), h.Percentile(1.0));
}

TEST(HistogramTest, PercentileOfEmptyHistogramIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, SnapshotPercentileMatchesLiveHistogram) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h");
  for (uint64_t v : {0u, 1u, 3u, 9u, 100u, 5000u}) h->Observe(v);
  RegistrySnapshot snap = reg.Snapshot();
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.histograms.at("h").Percentile(q), h->Percentile(q))
        << "q=" << q;
  }
}

TEST(RegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("eval.join_probes");
  Counter* b = reg.GetCounter("eval.join_probes");
  EXPECT_EQ(a, b);
  a->Inc(5);
  EXPECT_EQ(reg.GetCounter("eval.join_probes")->Value(), 5u);
  EXPECT_NE(reg.GetCounter("other"), a);
}

TEST(RegistryTest, SnapshotCapturesEverything) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Inc(3);
  reg.GetGauge("g")->Set(-2);
  reg.GetHistogram("h")->Observe(100);
  RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 3u);
  EXPECT_EQ(snap.gauges.at("g"), -2);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  EXPECT_EQ(snap.histograms.at("h").sum, 100u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("h").Mean(), 100.0);
  // Quantiles are bucket upper bounds; 100 lives in (64, 128].
  EXPECT_EQ(snap.histograms.at("h").ApproxQuantile(0.5), 128u);
}

TEST(RegistryTest, ResetZeroesButKeepsNames) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  c->Inc(9);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);  // the old pointer still works
  RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);  // the name is still registered
}

TEST(RegistryTest, ConcurrentIncrementsDontLoseCounts) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter* c = reg.GetCounter("shared");
      for (int i = 0; i < kPerThread; ++i) c->Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared")->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(SnapshotTest, TextAndJsonRenderings) {
  MetricsRegistry reg;
  reg.GetCounter("eval.nodes")->Inc(7);
  reg.GetHistogram("engine.eval_ns")->Observe(1000);
  RegistrySnapshot snap = reg.Snapshot();
  std::string text = snap.ToText();
  EXPECT_NE(text.find("eval.nodes 7"), std::string::npos);
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"eval.nodes\":7"), std::string::npos);
  EXPECT_NE(json.find("\"engine.eval_ns\""), std::string::npos);
  // Balanced braces — a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  std::string out;
  AppendJsonEscaped("a\"b\\c\n\t\x01", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t\\u0001");
}

TEST(EngineMetricsTest, QueryRecordsPhaseTimingsAndOperatorWork) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .\nb q c .").ok());
  engine.EnableMetrics();
  Result<MappingSet> r = engine.Query("g", "(?x p ?y) AND (?y q ?z)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);
  RegistrySnapshot snap = engine.MetricsSnapshot();
  EXPECT_EQ(snap.counters.at("engine.queries"), 1u);
  EXPECT_EQ(snap.histograms.at("engine.parse_ns").count, 1u);
  EXPECT_EQ(snap.histograms.at("engine.eval_ns").count, 1u);
  EXPECT_EQ(snap.counters.at("eval.nodes"), 3u);  // AND + two triples
  EXPECT_GT(snap.counters.at("eval.mappings_out"), 0u);
  engine.ResetMetrics();
  EXPECT_EQ(engine.MetricsSnapshot().counters.at("engine.queries"), 0u);
}

TEST(EngineMetricsTest, DisabledByDefault) {
  Engine engine;
  ASSERT_TRUE(engine.LoadGraphText("g", "a p b .").ok());
  ASSERT_TRUE(engine.Query("g", "(?x p ?y)").ok());
  RegistrySnapshot snap = engine.MetricsSnapshot();
  // Per-query instrumentation is off until EnableMetrics(); the only
  // series in a default snapshot are the ambient lock-contention ones
  // (always injected so "is it contention?" is answerable from any
  // scrape — docs/observability.md, "Profiling").
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(name.rfind("lock.", 0), 0u) << name << "=" << value;
  }
  for (const auto& [name, hist] : snap.histograms) {
    EXPECT_EQ(name.rfind("lock.", 0), 0u) << name;
  }
  EXPECT_EQ(snap.counters.count("lock.dictionary_contended_total"), 1u);
}

}  // namespace
}  // namespace rdfql
