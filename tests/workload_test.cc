#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"
#include "workload/scenarios.h"

namespace rdfql {
namespace {

TEST(GraphGeneratorTest, SocialGraphIsDeterministicAndScales) {
  Dictionary dict;
  SocialGraphSpec spec;
  spec.num_people = 50;
  Graph g1 = GenerateSocialGraph(spec, &dict);
  Graph g2 = GenerateSocialGraph(spec, &dict);
  EXPECT_EQ(g1, g2);
  // Every person contributes at least name/birthplace/works_at triples.
  EXPECT_GE(g1.size(), 150u);

  spec.num_people = 100;
  Graph bigger = GenerateSocialGraph(spec, &dict);
  EXPECT_GT(bigger.size(), g1.size());
}

TEST(GraphGeneratorTest, EmailProbabilityControlsOptionalData) {
  Dictionary dict;
  SocialGraphSpec none;
  none.email_probability = 0.0;
  Graph g = GenerateSocialGraph(none, &dict);
  TermId email = dict.InternIri("email");
  EXPECT_EQ(g.CountMatches(kInvalidTermId, email, kInvalidTermId), 0u);

  SocialGraphSpec all;
  all.email_probability = 1.0;
  Graph g2 = GenerateSocialGraph(all, &dict);
  EXPECT_EQ(g2.CountMatches(kInvalidTermId, email, kInvalidTermId),
            static_cast<size_t>(all.num_people));
}

TEST(GraphGeneratorTest, RandomSubgraphIsSubset) {
  Dictionary dict;
  Rng rng(1);
  Graph g = GenerateRandomGraph(100, 10, &dict, &rng);
  Graph sub = RandomSubgraph(g, 0.5, &rng);
  EXPECT_TRUE(sub.IsSubsetOf(g));
  EXPECT_LT(sub.size(), g.size());
}

TEST(PatternGeneratorTest, RespectsFragmentSpec) {
  Dictionary dict;
  Rng rng(2);
  PatternGenSpec spec;  // AND/UNION only by default
  for (int i = 0; i < 100; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict, &rng);
    EXPECT_TRUE(InFragment(p, "AU"));
  }
  spec.allow_opt = true;
  spec.allow_ns = true;
  bool saw_opt = false, saw_ns = false;
  for (int i = 0; i < 200; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict, &rng);
    saw_opt = saw_opt || p->Uses(PatternKind::kOpt);
    saw_ns = saw_ns || p->Uses(PatternKind::kNs);
  }
  EXPECT_TRUE(saw_opt);
  EXPECT_TRUE(saw_ns);
}

TEST(ScenariosTest, GraphsMatchTheFigures) {
  Dictionary dict;
  EXPECT_EQ(scenarios::PirateBayGraph(&dict).size(), 6u);
  Graph g1 = scenarios::ChileGraphG1(&dict);
  Graph g2 = scenarios::ChileGraphG2(&dict);
  EXPECT_TRUE(g1.IsSubsetOf(g2));
  EXPECT_EQ(g2.size(), g1.size() + 1);
  EXPECT_EQ(scenarios::ProfessorsGraph(&dict).size(), 6u);
}

}  // namespace
}  // namespace rdfql
