#include "algebra/result_io.h"

#include <gtest/gtest.h>

namespace rdfql {
namespace {

class ResultIoTest : public ::testing::Test {
 protected:
  Mapping Make(std::vector<std::pair<std::string, std::string>> bindings) {
    std::vector<std::pair<VarId, TermId>> ids;
    for (const auto& [var, iri] : bindings) {
      ids.emplace_back(dict_.InternVar(var), dict_.InternIri(iri));
    }
    return Mapping::FromBindings(std::move(ids));
  }
  Dictionary dict_;
};

TEST_F(ResultIoTest, CsvBasic) {
  MappingSet r = MappingSet::FromList(
      {Make({{"x", "a"}, {"y", "b"}}), Make({{"x", "c"}})});
  EXPECT_EQ(WriteCsv(r, dict_), "x,y\na,b\nc,\n");
}

TEST_F(ResultIoTest, CsvEscaping) {
  MappingSet r = MappingSet::FromList(
      {Make({{"x", "has,comma"}, {"y", "has\"quote"}})});
  EXPECT_EQ(WriteCsv(r, dict_),
            "x,y\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST_F(ResultIoTest, CsvEmptyResult) {
  MappingSet empty;
  EXPECT_EQ(WriteCsv(empty, dict_), "\n");
}

TEST_F(ResultIoTest, JsonBasic) {
  MappingSet r = MappingSet::FromList({Make({{"x", "a"}})});
  EXPECT_EQ(WriteResultsJson(r, dict_),
            "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":["
            "{\"x\":{\"type\":\"iri\",\"value\":\"a\"}}]}}");
}

TEST_F(ResultIoTest, JsonOmitsUnboundAndEscapes) {
  MappingSet r = MappingSet::FromList(
      {Make({{"x", "line\nbreak"}}), Make({{"x", "v"}, {"y", "w\\z"}})});
  std::string json = WriteResultsJson(r, dict_);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("w\\\\z"), std::string::npos);
  // The first row must not mention ?y at all.
  size_t first_obj = json.find("{\"x\"");
  size_t first_close = json.find('}', first_obj);
  EXPECT_EQ(json.substr(first_obj, first_close - first_obj).find("\"y\""),
            std::string::npos);
}

TEST_F(ResultIoTest, JsonEmptyResult) {
  MappingSet empty;
  EXPECT_EQ(WriteResultsJson(empty, dict_),
            "{\"head\":{\"vars\":[]},\"results\":{\"bindings\":[]}}");
}

TEST_F(ResultIoTest, RowsAreSortedDeterministically) {
  MappingSet a = MappingSet::FromList({Make({{"x", "b"}}), Make({{"x", "a"}})});
  MappingSet b = MappingSet::FromList({Make({{"x", "a"}}), Make({{"x", "b"}})});
  EXPECT_EQ(WriteCsv(a, dict_), WriteCsv(b, dict_));
  EXPECT_EQ(WriteResultsJson(a, dict_), WriteResultsJson(b, dict_));
}

}  // namespace
}  // namespace rdfql
