#include "rdf/dictionary.h"

#include <gtest/gtest.h>

namespace rdfql {
namespace {

TEST(DictionaryTest, InternIriIsIdempotent) {
  Dictionary dict;
  TermId a = dict.InternIri("alpha");
  TermId b = dict.InternIri("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, dict.InternIri("alpha"));
  EXPECT_EQ(b, dict.InternIri("beta"));
  EXPECT_EQ(dict.iri_count(), 2u);
}

TEST(DictionaryTest, InternVarIsIdempotent) {
  Dictionary dict;
  VarId x = dict.InternVar("x");
  VarId y = dict.InternVar("y");
  EXPECT_NE(x, y);
  EXPECT_EQ(x, dict.InternVar("x"));
  EXPECT_EQ(dict.var_count(), 2u);
}

TEST(DictionaryTest, IriAndVarNamespacesAreIndependent) {
  Dictionary dict;
  TermId iri = dict.InternIri("same");
  VarId var = dict.InternVar("same");
  EXPECT_EQ(dict.IriName(iri), "same");
  EXPECT_EQ(dict.VarName(var), "same");
}

TEST(DictionaryTest, FindReturnsInvalidForUnknown) {
  Dictionary dict;
  EXPECT_EQ(dict.FindIri("nope"), kInvalidTermId);
  EXPECT_EQ(dict.FindVar("nope"), kInvalidVarId);
  dict.InternIri("yes");
  EXPECT_NE(dict.FindIri("yes"), kInvalidTermId);
}

TEST(DictionaryTest, TermNameRendersVariablesWithQuestionMark) {
  Dictionary dict;
  Term var = Term::Var(dict.InternVar("x"));
  Term iri = Term::Iri(dict.InternIri("a"));
  EXPECT_EQ(dict.TermName(var), "?x");
  EXPECT_EQ(dict.TermName(iri), "a");
}

TEST(DictionaryTest, FreshVarNeverCollides) {
  Dictionary dict;
  dict.InternVar("x_f0");
  VarId fresh = dict.FreshVar("x");
  EXPECT_NE(dict.VarName(fresh), "x_f0");
  VarId fresh2 = dict.FreshVar("x");
  EXPECT_NE(fresh, fresh2);
}

TEST(DictionaryTest, FreshIriNeverCollides) {
  Dictionary dict;
  TermId a = dict.FreshIri("g");
  TermId b = dict.FreshIri("g");
  EXPECT_NE(a, b);
}

TEST(TermTest, TagBitsSeparateVarsFromIris) {
  Term var = Term::Var(5);
  Term iri = Term::Iri(5);
  EXPECT_TRUE(var.is_var());
  EXPECT_FALSE(var.is_iri());
  EXPECT_TRUE(iri.is_iri());
  EXPECT_NE(var, iri);
  EXPECT_EQ(var.var(), 5u);
  EXPECT_EQ(iri.iri(), 5u);
}

TEST(TermTest, DefaultTermIsInvalid) {
  Term t;
  EXPECT_FALSE(t.is_valid());
  EXPECT_FALSE(t.is_iri());
  EXPECT_FALSE(t.is_var());
}

}  // namespace
}  // namespace rdfql
