#include "algebra/pattern_printer.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace rdfql {
namespace {

class PrinterTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Mapping Make(std::vector<std::pair<std::string, std::string>> bindings) {
    std::vector<std::pair<VarId, TermId>> ids;
    for (const auto& [var, iri] : bindings) {
      ids.emplace_back(dict_.InternVar(var), dict_.InternIri(iri));
    }
    return Mapping::FromBindings(std::move(ids));
  }
  Dictionary dict_;
};

TEST_F(PrinterTest, IriTokenQuotesNonWords) {
  EXPECT_EQ(IriToken("plain_word"), "plain_word");
  EXPECT_EQ(IriToken("http://x/y"), "http://x/y");
  EXPECT_EQ(IriToken("has space"), "<has space>");
  EXPECT_EQ(IriToken("AND"), "<AND>");  // reserved word
  EXPECT_EQ(IriToken("bound"), "<bound>");
  EXPECT_EQ(IriToken(""), "<>");
}

TEST_F(PrinterTest, ReservedWordIrisRoundTrip) {
  dict_.InternVar("x");
  PatternPtr p = Pattern::MakeTriple(
      Term::Var(dict_.FindVar("x")), Term::Iri(dict_.InternIri("AND")),
      Term::Iri(dict_.InternIri("a b")));
  std::string text = PatternToString(p, dict_);
  EXPECT_EQ(text, "(?x <AND> <a b>)");
  Result<PatternPtr> reparsed = ParsePattern(text, &dict_);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(Pattern::Equal(p, reparsed.value()));
}

TEST_F(PrinterTest, MappingTableColumnsAndBlanks) {
  MappingSet r = MappingSet::FromList(
      {Make({{"x", "juan"}}),
       Make({{"x", "ana"}, {"y", "ana@puc.cl"}})});
  std::string table = MappingTable(r, dict_);
  // Header with both columns, one blank cell for juan's ?y.
  EXPECT_NE(table.find("?x"), std::string::npos);
  EXPECT_NE(table.find("?y"), std::string::npos);
  EXPECT_NE(table.find("juan"), std::string::npos);
  EXPECT_NE(table.find("ana@puc.cl"), std::string::npos);
}

TEST_F(PrinterTest, MappingTableEmptyCases) {
  MappingSet empty;
  EXPECT_EQ(MappingTable(empty, dict_), "(no solutions)\n");
  MappingSet unit = MappingSet::FromList({Mapping()});
  EXPECT_EQ(MappingTable(unit, dict_), "(the empty mapping, x1)\n");
}

TEST_F(PrinterTest, ConstructRoundTrips) {
  Result<ParsedConstruct> q = ParseConstruct(
      "CONSTRUCT { (?n affiliated_to ?u) (flag is set) } WHERE "
      "(((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e))",
      &dict_);
  ASSERT_TRUE(q.ok());
  std::string text = ConstructToString(q->templ, q->where, dict_);
  Result<ParsedConstruct> reparsed = ParseConstruct(text, &dict_);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(reparsed->templ.size(), q->templ.size());
  for (size_t i = 0; i < q->templ.size(); ++i) {
    EXPECT_TRUE(reparsed->templ[i] == q->templ[i]);
  }
  EXPECT_TRUE(Pattern::Equal(q->where, reparsed->where));
}

TEST_F(PrinterTest, TriplePatternToStringMatchesPatternForm) {
  dict_.InternVar("x");
  TriplePattern t(Term::Var(dict_.FindVar("x")),
                  Term::Iri(dict_.InternIri("p")),
                  Term::Iri(dict_.InternIri("two words")));
  EXPECT_EQ(TriplePatternToString(t, dict_), "(?x p <two words>)");
}

TEST_F(PrinterTest, PrintsFullOperatorSet) {
  PatternPtr p = Parse(
      "NS(((?x a ?y) MINUS (?y b ?z)) UNION "
      "((SELECT {?x} WHERE (?x c ?w)) FILTER bound(?x)))");
  std::string text = PatternToString(p, dict_);
  Result<PatternPtr> reparsed = ParsePattern(text, &dict_);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_TRUE(Pattern::Equal(p, reparsed.value()));
}

}  // namespace
}  // namespace rdfql
