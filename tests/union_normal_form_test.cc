#include "transform/union_normal_form.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "parser/parser.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

class UnfTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Dictionary dict_;
};

TEST_F(UnfTest, TripleIsItsOwnNormalForm) {
  Result<std::vector<PatternPtr>> r = UnionNormalForm(Parse("(?x a ?y)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST_F(UnfTest, DistributesUnionOverAnd) {
  Result<std::vector<PatternPtr>> r = UnionNormalForm(
      Parse("((?x a b) UNION (?x c d)) AND ((?x e f) UNION (?x g h))"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
  for (const PatternPtr& d : *r) {
    EXPECT_FALSE(d->Uses(PatternKind::kUnion));
  }
}

TEST_F(UnfTest, OptSplitsIntoAndPlusMinus) {
  Result<std::vector<PatternPtr>> r =
      UnionNormalForm(Parse("(?x a b) OPT ((?x c ?y) UNION (?x d ?z))"));
  ASSERT_TRUE(r.ok());
  // 1×2 AND-disjuncts + 1 chained-MINUS disjunct.
  EXPECT_EQ(r->size(), 3u);
}

TEST_F(UnfTest, RejectsNsPatterns) {
  Result<std::vector<PatternPtr>> r = UnionNormalForm(Parse("NS((?x a b))"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(UnfTest, EnforcesDisjunctLimit) {
  NormalFormLimits limits;
  limits.max_disjuncts = 3;
  Result<std::vector<PatternPtr>> r = UnionNormalForm(
      Parse("((?x a b) UNION (?x c d)) AND ((?x e f) UNION (?x g h))"),
      limits);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// Prop D.1: the union of the disjuncts is equivalent to the input.
TEST_F(UnfTest, PreservesSemanticsOnRandomPatterns) {
  Rng rng(42);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.allow_minus = true;
  spec.max_depth = 3;
  for (int i = 0; i < 60; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    Result<std::vector<PatternPtr>> unf = UnionNormalForm(p);
    ASSERT_TRUE(unf.ok()) << unf.status().ToString();
    PatternPtr rebuilt = Pattern::UnionAll(*unf);
    for (int trial = 0; trial < 5; ++trial) {
      Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "i");
      EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, rebuilt));
    }
  }
}

TEST_F(UnfTest, CertainVarsApproximatesFromBelow) {
  EXPECT_EQ(CertainVars(Parse("(?x a ?y)")).size(), 2u);
  EXPECT_EQ(CertainVars(Parse("(?x a ?y) OPT (?y b ?z)")).size(), 2u);
  EXPECT_EQ(CertainVars(Parse("(?x a b) UNION (?y c d)")).size(), 0u);
  EXPECT_EQ(CertainVars(Parse("(SELECT {?x} WHERE (?x a ?y))")).size(), 1u);
}

// CertainVars must be a lower bound of every answer's domain.
TEST_F(UnfTest, CertainVarsIsSound) {
  Rng rng(88);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.allow_minus = spec.allow_ns = true;
  spec.max_depth = 3;
  for (int i = 0; i < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    std::vector<VarId> certain = CertainVars(p);
    Graph g = GenerateRandomGraph(15, 4, &dict_, &rng, "i");
    for (const Mapping& m : EvalPattern(g, p)) {
      for (VarId v : certain) {
        EXPECT_TRUE(m.Binds(v));
      }
    }
  }
}

// Lemma D.2: the fixed-domain disjuncts partition every answer by domain.
TEST_F(UnfTest, FixedDomainUnfPreservesSemanticsAndFixesDomains) {
  Rng rng(7);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = true;
  spec.max_depth = 3;
  for (int i = 0; i < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    Result<std::vector<FixedDomainDisjunct>> fd =
        FixedDomainUnionNormalForm(p);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();

    Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "i");
    // (1) every disjunct's answers bind exactly the annotated domain;
    MappingSet all;
    for (const FixedDomainDisjunct& d : *fd) {
      MappingSet r = EvalPattern(g, d.pattern);
      for (const Mapping& m : r) {
        EXPECT_EQ(m.Domain(), d.domain);
        all.Add(m);
      }
    }
    // (2) the union over all disjuncts is the original evaluation.
    EXPECT_EQ(all, EvalPattern(g, p));
  }
}

}  // namespace
}  // namespace rdfql
