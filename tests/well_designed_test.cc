#include "analysis/well_designed.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "workload/scenarios.h"

namespace rdfql {
namespace {

class WellDesignedTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Dictionary dict_;
};

TEST_F(WellDesignedTest, TriplesAndAndsAreWellDesigned) {
  EXPECT_TRUE(IsWellDesigned(Parse("(?x a ?y)")));
  EXPECT_TRUE(IsWellDesigned(Parse("(?x a ?y) AND (?y b ?z)")));
}

TEST_F(WellDesignedTest, Example31IsWellDesigned) {
  EXPECT_TRUE(IsWellDesigned(Parse(scenarios::Example31Query())));
}

TEST_F(WellDesignedTest, Example33IsNotWellDesigned) {
  // ?X appears in the OPT's right arm and outside the OPT, but not on the
  // left (the paper's canonical violation).
  std::string why;
  EXPECT_FALSE(IsWellDesigned(Parse(scenarios::Example33Query()), &why));
  EXPECT_FALSE(why.empty());
}

TEST_F(WellDesignedTest, FilterSafetyCondition) {
  // var(R) ⊆ var(P1) holds:
  EXPECT_TRUE(IsWellDesigned(Parse("((?x a ?y) FILTER bound(?y))")));
  // var(R) ⊈ var(P1):
  EXPECT_FALSE(IsWellDesigned(Parse("((?x a ?y) FILTER bound(?z))")));
}

TEST_F(WellDesignedTest, NestedOptConditions) {
  // Nested OPT where the inner optional variable stays local: fine.
  EXPECT_TRUE(IsWellDesigned(
      Parse("((?x a ?y) OPT ((?x b ?z) OPT (?z c ?w)))")));
  // ?w leaks to a sibling branch: violation.
  EXPECT_FALSE(IsWellDesigned(
      Parse("(((?x a ?y) OPT (?x b ?w)) OPT (?x c ?w))")));
  // Same variable on both OPT arms of *independent* OPTs under AND —
  // violation (?z occurs outside each OPT without being on its left).
  EXPECT_FALSE(IsWellDesigned(
      Parse("((?x a ?y) OPT (?x b ?z)) AND ((?x c ?y) OPT (?x d ?z))")));
}

TEST_F(WellDesignedTest, OptVariableSharedWithLeftIsFine) {
  EXPECT_TRUE(IsWellDesigned(
      Parse("((?x a ?y) AND (?y b ?z)) OPT (?z c ?w)")));
}

TEST_F(WellDesignedTest, UnionPatternsAreNotWellDesignedPerDef34) {
  EXPECT_FALSE(IsWellDesigned(Parse("(?x a ?y) UNION (?x b ?y)")));
  EXPECT_FALSE(IsWellDesigned(Parse("NS((?x a ?y))")));
  EXPECT_FALSE(IsWellDesigned(Parse("(SELECT {?x} WHERE (?x a ?y))")));
}

TEST_F(WellDesignedTest, UnionOfWellDesigned) {
  EXPECT_TRUE(IsUnionOfWellDesigned(
      Parse("((?x a ?y) OPT (?x b ?z)) UNION ((?x c ?y) OPT (?x d ?w))")));
  EXPECT_FALSE(IsUnionOfWellDesigned(
      Parse("((?x a ?y) OPT (?x b ?z)) UNION "
            "((?u was c) AND ((?v was c) OPT (?v e ?u)))")));
  // The Theorem 3.6 witness is in AUOF but not a union of well-designed
  // patterns syntactically? It actually IS well designed as a single
  // disjunct (OPT over a UNION is outside SPARQL[AOF], though).
  EXPECT_FALSE(IsUnionOfWellDesigned(Parse(scenarios::Theorem36Witness())));
}

TEST_F(WellDesignedTest, Theorem35WitnessNotWellDesigned) {
  EXPECT_FALSE(IsWellDesigned(Parse(scenarios::Theorem35Witness())));
}

}  // namespace
}  // namespace rdfql
