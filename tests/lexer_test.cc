#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace rdfql {
namespace {

std::vector<TokenKind> Kinds(const std::string& text) {
  Result<std::vector<Token>> r = Tokenize(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::vector<TokenKind> kinds;
  for (const Token& t : *r) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, Keywords) {
  EXPECT_EQ(Kinds("AND UNION OPT MINUS FILTER SELECT WHERE NS CONSTRUCT"),
            (std::vector<TokenKind>{
                TokenKind::kKwAnd, TokenKind::kKwUnion, TokenKind::kKwOpt,
                TokenKind::kKwMinus, TokenKind::kKwFilter,
                TokenKind::kKwSelect, TokenKind::kKwWhere, TokenKind::kKwNs,
                TokenKind::kKwConstruct, TokenKind::kEof}));
  // Keywords are case-sensitive: lowercase forms are IRIs.
  EXPECT_EQ(Kinds("and")[0], TokenKind::kIri);
  EXPECT_EQ(Kinds("bound true false")[0], TokenKind::kKwBound);
}

TEST(LexerTest, VariablesAndIris) {
  Result<std::vector<Token>> r = Tokenize("?x foo <a weird iri> ?long_name");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kVar);
  EXPECT_EQ((*r)[0].text, "x");
  EXPECT_EQ((*r)[1].kind, TokenKind::kIri);
  EXPECT_EQ((*r)[1].text, "foo");
  EXPECT_EQ((*r)[2].kind, TokenKind::kIri);
  EXPECT_EQ((*r)[2].text, "a weird iri");
  EXPECT_EQ((*r)[3].text, "long_name");
}

TEST(LexerTest, PunctuationAndOperators) {
  EXPECT_EQ(Kinds("( ) { } = != ! & | ."),
            (std::vector<TokenKind>{
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBrace,
                TokenKind::kRBrace, TokenKind::kEq, TokenKind::kNeq,
                TokenKind::kBang, TokenKind::kAmp, TokenKind::kPipe,
                TokenKind::kDot, TokenKind::kEof}));
}

TEST(LexerTest, CommentsAndWhitespace) {
  EXPECT_EQ(Kinds("?x # trailing comment with ?junk\n?y"),
            (std::vector<TokenKind>{TokenKind::kVar, TokenKind::kVar,
                                    TokenKind::kEof}));
  EXPECT_EQ(Kinds("  \t\r\n "),
            (std::vector<TokenKind>{TokenKind::kEof}));
}

TEST(LexerTest, WordCharactersIncludeUrlPieces) {
  Result<std::vector<Token>> r = Tokenize("http://example.org/a-b+c@d");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kIri);
  EXPECT_EQ((*r)[0].text, "http://example.org/a-b+c@d");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("?").ok());          // empty variable name
  EXPECT_FALSE(Tokenize("<unterminated").ok());
  EXPECT_FALSE(Tokenize("\x01").ok());        // control character
}

TEST(LexerTest, OffsetsPointIntoTheInput) {
  Result<std::vector<Token>> r = Tokenize("?x AND ?y");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].offset, 0u);
  EXPECT_EQ((*r)[1].offset, 3u);
  EXPECT_EQ((*r)[2].offset, 7u);
}

TEST(LexerTest, TokenKindNamesAreStable) {
  EXPECT_STREQ(TokenKindName(TokenKind::kKwAnd), "AND");
  EXPECT_STREQ(TokenKindName(TokenKind::kEof), "end of input");
  EXPECT_STREQ(TokenKindName(TokenKind::kVar), "variable");
}

}  // namespace
}  // namespace rdfql
