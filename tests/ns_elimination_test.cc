#include "transform/ns_elimination.h"

#include "analysis/well_designed.h"
#include "transform/opt_rewriter.h"

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "eval/evaluator.h"
#include "parser/parser.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

class NsEliminationTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Dictionary dict_;
};

TEST_F(NsEliminationTest, NsFreePatternsPassThrough) {
  PatternPtr p = Parse("(?x a ?y) OPT (?y b ?z)");
  Result<PatternPtr> r = EliminateNs(p);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(Pattern::Equal(p, r.value()));
}

TEST_F(NsEliminationTest, ResultHasNoNs) {
  PatternPtr p = Parse("NS((?x a b) UNION ((?x a b) AND (?x c ?y)))");
  Result<PatternPtr> r = EliminateNs(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value()->Uses(PatternKind::kNs));
}

// Theorem 5.1 on the canonical OPT example: NS(P1 ∪ (P1 AND P2)) after
// elimination must still produce the maximal answers.
TEST_F(NsEliminationTest, EquivalentOnOptEncoding) {
  PatternPtr p = Parse("NS((?x a b) UNION ((?x a b) AND (?x c ?y)))");
  Result<PatternPtr> elim = EliminateNs(p);
  ASSERT_TRUE(elim.ok());

  // x1 has the optional triple, x2 does not.
  Graph g;
  TermId a = dict_.InternIri("a"), b = dict_.InternIri("b"),
         c = dict_.InternIri("c");
  g.Insert(dict_.InternIri("x1"), a, b);
  g.Insert(dict_.InternIri("x2"), a, b);
  g.Insert(dict_.InternIri("x1"), c, dict_.InternIri("m"));
  EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, elim.value()));
  EXPECT_EQ(EvalPattern(g, p).size(), 2u);
}

// The main property: EliminateNs preserves ⟦·⟧G exactly, on random
// NS-SPARQL patterns and random graphs (Theorem 5.1).
TEST_F(NsEliminationTest, PreservesSemanticsOnRandomPatterns) {
  Rng rng(2016);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_ns = true;
  spec.allow_select = true;
  spec.max_depth = 3;
  int checked = 0;
  for (int i = 0; i < 80; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    NormalFormLimits limits;
    limits.max_disjuncts = 4000;
    Result<PatternPtr> elim = EliminateNs(p, limits);
    if (!elim.ok()) continue;  // over the blow-up budget: skip
    ++checked;
    EXPECT_FALSE(elim.value()->Uses(PatternKind::kNs));
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(10, 4, &dict_, &rng, "i");
      EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, elim.value()));
    }
  }
  EXPECT_GE(checked, 30);
}

TEST_F(NsEliminationTest, NestedNsIsEliminatedInnermostFirst) {
  PatternPtr p = Parse("NS(NS((?x a b) UNION ((?x a b) AND (?x c ?y))))");
  Result<PatternPtr> elim = EliminateNs(p);
  ASSERT_TRUE(elim.ok());
  EXPECT_FALSE(elim.value()->Uses(PatternKind::kNs));

  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = GenerateRandomGraph(10, 4, &dict_, &rng, "j");
    EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, elim.value()));
  }
}

// Theorem 5.1 full circle: SPARQL → NS-SPARQL (RewriteOptToNs) → SPARQL
// (EliminateNs). For well-designed (hence subsumption-free) inputs the
// composition is exactly equivalent to the original pattern.
TEST_F(NsEliminationTest, FullCircleWithOptRewriting) {
  Rng rng(51);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.allow_filter = true;
  spec.max_depth = 3;
  int tested = 0;
  for (int i = 0; i < 200 && tested < 25; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    if (!IsWellDesigned(p)) continue;
    PatternPtr ns_form = RewriteOptToNs(p);
    NormalFormLimits limits;
    limits.max_disjuncts = 4000;
    Result<PatternPtr> back = EliminateNs(ns_form, limits);
    if (!back.ok()) continue;  // blow-up budget
    ++tested;
    EXPECT_FALSE(back.value()->Uses(PatternKind::kNs));
    // OPT itself was consumed by the rewriting; the eliminated form may
    // use MINUS, which is SPARQL-definable.
    EXPECT_FALSE(back.value()->Uses(PatternKind::kOpt));
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(10, 4, &dict_, &rng, "fc");
      EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, back.value()));
    }
  }
  EXPECT_GE(tested, 10);
}

// The blow-up is real: the eliminated pattern grows with the number of
// optional variables (this is the curve bench_ns_elimination measures).
TEST_F(NsEliminationTest, SizeGrowsWithOptionalVariables) {
  std::vector<size_t> sizes;
  for (int k = 1; k <= 3; ++k) {
    std::string inner = "(?x a b)";
    for (int i = 0; i < k; ++i) {
      std::string v = "?y" + std::to_string(i);
      std::string pred = "p" + std::to_string(i);
      inner = "(" + inner + " UNION ((?x a b) AND (?x " + pred + " " + v +
              ")))";
    }
    Result<PatternPtr> elim = EliminateNs(Parse("NS(" + inner + ")"));
    ASSERT_TRUE(elim.ok());
    sizes.push_back(elim.value()->SizeInNodes());
  }
  EXPECT_LT(sizes[0], sizes[1]);
  EXPECT_LT(sizes[1], sizes[2]);
}

}  // namespace
}  // namespace rdfql
