#include "obs/inflight.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "obs/query_log.h"
#include "util/status.h"

namespace rdfql {
namespace {

TEST(InflightRegistryTest, RegisterSnapshotUnregister) {
  InflightRegistry reg;
  InflightSlot* slot = reg.Register("g", "(?x p ?y)", 42);
  ASSERT_NE(slot, nullptr);
  slot->SetCorrelationId(7);
  slot->SetPhase(QueryPhase::kEvaluating);
  slot->SetFragment("SPARQL[A]");
  slot->SetThreads(4);

  InflightSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.queries.size(), 1u);
  const InflightQueryInfo& q = snap.queries[0];
  EXPECT_EQ(q.graph, "g");
  EXPECT_EQ(q.query, "(?x p ?y)");
  EXPECT_EQ(q.query_hash, 42u);
  EXPECT_EQ(q.correlation_id, 7u);
  EXPECT_EQ(q.phase, QueryPhase::kEvaluating);
  EXPECT_EQ(q.fragment, "SPARQL[A]");
  EXPECT_EQ(q.threads, 4);
  EXPECT_FALSE(q.watchdog_cancelled);
  EXPECT_EQ(reg.active(), 1u);
  EXPECT_EQ(reg.registered_total(), 1u);

  reg.Unregister(slot);
  EXPECT_EQ(reg.active(), 0u);
  EXPECT_TRUE(reg.Snapshot().queries.empty());
  // The cumulative total survives the unregistration.
  EXPECT_EQ(reg.registered_total(), 1u);

  // The table renders headers only when queries are in flight.
  EXPECT_NE(reg.Snapshot().ToText().find("in-flight: 0"), std::string::npos);
}

TEST(InflightRegistryTest, TruncatesStoredQueryText) {
  InflightRegistry reg;
  std::string longer(InflightRegistry::kMaxStoredQueryBytes + 100, 'x');
  InflightSlot* slot = reg.Register("g", longer, 1);
  ASSERT_NE(slot, nullptr);
  InflightSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.queries.size(), 1u);
  EXPECT_EQ(snap.queries[0].query.size(),
            InflightRegistry::kMaxStoredQueryBytes);
  reg.Unregister(slot);
}

TEST(InflightRegistryTest, WatchdogCancelRespectsGenerations) {
  InflightRegistry reg;
  InflightSlot* slot = reg.Register("g", "q1", 1);
  ASSERT_NE(slot, nullptr);
  InflightSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.queries.size(), 1u);
  size_t index = snap.queries[0].slot;
  uint64_t generation = snap.queries[0].generation;
  reg.Unregister(slot);

  // Stale (slot index, generation) from before the unregistration: the
  // cancel must refuse rather than hit whatever runs there now.
  EXPECT_FALSE(reg.WatchdogCancel(index, generation,
                                  Status::Cancelled("stale")));
  EXPECT_EQ(reg.watchdog_cancelled_total(), 0u);

  // Fresh registration: a matching generation cancels exactly once.
  InflightSlot* slot2 = reg.Register("g", "q2", 2);
  ASSERT_NE(slot2, nullptr);
  snap = reg.Snapshot();
  ASSERT_EQ(snap.queries.size(), 1u);
  EXPECT_TRUE(reg.WatchdogCancel(snap.queries[0].slot,
                                 snap.queries[0].generation,
                                 Status::Cancelled("too slow")));
  EXPECT_TRUE(slot2->watchdog_cancelled());
  ASSERT_NE(slot2->token(), nullptr);
  EXPECT_TRUE(slot2->token()->cancelled());
  EXPECT_EQ(slot2->token()->status().code(), StatusCode::kCancelled);
  // Idempotence: the second cancel of the same registration is a no-op.
  EXPECT_FALSE(reg.WatchdogCancel(snap.queries[0].slot,
                                  snap.queries[0].generation,
                                  Status::Cancelled("again")));
  EXPECT_EQ(reg.watchdog_cancelled_total(), 1u);
  reg.Unregister(slot2);
}

TEST(InflightRegistryTest, FullRegistryReturnsNull) {
  InflightRegistry reg;
  std::vector<InflightSlot*> slots;
  for (size_t i = 0; i < InflightRegistry::kMaxSlots; ++i) {
    InflightSlot* slot = reg.Register("g", "q", i);
    ASSERT_NE(slot, nullptr);
    slots.push_back(slot);
  }
  // Observability, not admission control: the overflow query runs
  // unmonitored instead of being refused.
  EXPECT_EQ(reg.Register("g", "overflow", 999), nullptr);
  EXPECT_EQ(reg.active(), InflightRegistry::kMaxSlots);
  for (InflightSlot* slot : slots) reg.Unregister(slot);
  EXPECT_EQ(reg.active(), 0u);
  EXPECT_NE(reg.Register("g", "q", 0), nullptr);
}

TEST(InflightScopeTest, NestedScopesBorrowTheOuterSlot) {
  InflightRegistry reg;
  EXPECT_EQ(InflightScope::CurrentSlot(), nullptr);
  {
    InflightScope outer(&reg, "g", "outer", 1);
    ASSERT_NE(outer.slot(), nullptr);
    EXPECT_EQ(InflightScope::CurrentSlot(), outer.slot());
    {
      InflightScope inner(&reg, "g", "inner", 2);
      EXPECT_EQ(inner.slot(), outer.slot());
      EXPECT_EQ(reg.active(), 1u);
      // The borrowed registration keeps the outer query's identity.
      EXPECT_EQ(reg.Snapshot().queries[0].query, "outer");
    }
    // Inner scope destruction must not unregister the outer slot.
    EXPECT_EQ(reg.active(), 1u);
    EXPECT_EQ(InflightScope::CurrentSlot(), outer.slot());
  }
  EXPECT_EQ(reg.active(), 0u);
  EXPECT_EQ(InflightScope::CurrentSlot(), nullptr);
}

TEST(InflightScopeTest, NullRegistryIsANoOp) {
  InflightScope scope(nullptr, "g", "q", 1);
  EXPECT_EQ(scope.slot(), nullptr);
  EXPECT_EQ(InflightScope::CurrentSlot(), nullptr);
}

// --- Engine integration ---

class EngineInflightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string triples;
    for (int i = 0; i < 40; ++i) {
      triples += "s" + std::to_string(i) + " p o" + std::to_string(i) + " .\n";
    }
    ASSERT_TRUE(engine_.LoadGraphText("g", triples).ok());
  }

  Engine engine_;
};

TEST_F(EngineInflightTest, MonitoredResultsAreBitIdentical) {
  const std::string queries[] = {
      "(?x p ?y)",
      "((?x p ?y) AND (?a p ?b))",
      "(?x p ?y) OPT (?x p ?z)",
      "NS((?x p ?y) UNION ((?x p ?y) AND (?x p ?z)))",
  };
  for (const std::string& q : queries) {
    engine_.EnableLiveMonitoring(false);
    Result<MappingSet> off = engine_.Query("g", q);
    engine_.EnableLiveMonitoring(true);
    Result<MappingSet> on = engine_.Query("g", q);
    ASSERT_TRUE(off.ok()) << q;
    ASSERT_TRUE(on.ok()) << q;
    EXPECT_TRUE(*off == *on) << q;
  }
  EXPECT_EQ(engine_.inflight()->registered_total(), 4u);
  // Nothing left registered once the queries returned.
  EXPECT_TRUE(engine_.InflightSnapshot().queries.empty());
}

TEST_F(EngineInflightTest, EvalAndExplainedRegisterToo) {
  engine_.EnableLiveMonitoring(true);
  Result<PatternPtr> p = engine_.Parse("(?x p ?y)");
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(engine_.Eval("g", *p).ok());
  ASSERT_TRUE(engine_.QueryExplained("g", "(?x p ?y)").ok());
  EXPECT_EQ(engine_.inflight()->registered_total(), 2u);
  EXPECT_TRUE(engine_.InflightSnapshot().queries.empty());
}

TEST_F(EngineInflightTest, ActiveGaugeAppearsInMetricsSnapshot) {
  engine_.EnableLiveMonitoring(true);
  ASSERT_TRUE(engine_.Query("g", "(?x p ?y)").ok());
  RegistrySnapshot snap = engine_.MetricsSnapshot();
  ASSERT_TRUE(snap.gauges.count("engine.queries_active"));
  EXPECT_EQ(snap.gauges.at("engine.queries_active"), 0);
  EXPECT_TRUE(snap.gauges.count("inflight.live_bytes"));
  EXPECT_TRUE(snap.gauges.count("inflight.live_mappings"));
}

// A query that cross-products enough rows to run for seconds: the watchdog
// (or the test) has ample time to observe and cancel it.
constexpr char kSlowQuery[] =
    "((?a p ?x) AND ((?b p ?y) AND ((?c p ?z) AND ((?d p ?w) AND "
    "(?e p ?v)))))";

TEST_F(EngineInflightTest, WatchdogCancelsARunningQuery) {
  QueryLog log;
  engine_.SetQueryLog(&log);
  engine_.EnableMetrics();
  engine_.EnableLiveMonitoring(true);

  Result<MappingSet> result = Status::Internal("not run");
  std::thread worker([&] { result = engine_.Query("g", kSlowQuery); });

  // Wait until the query is visibly evaluating, then cancel it the way the
  // watchdog does: by (slot, generation) through the registry.
  bool cancelled = false;
  for (int i = 0; i < 2000 && !cancelled; ++i) {
    InflightSnapshot snap = engine_.InflightSnapshot();
    for (const InflightQueryInfo& q : snap.queries) {
      if (q.phase != QueryPhase::kEvaluating) continue;
      cancelled = engine_.inflight()->WatchdogCancel(
          q.slot, q.generation, Status::Cancelled("watchdog: test budget"));
    }
    if (!cancelled) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  worker.join();
  ASSERT_TRUE(cancelled);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);

  // The log shows the typed outcome, the registry and metrics both count it.
  std::vector<QueryLogRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, "watchdog_cancelled");
  EXPECT_EQ(engine_.inflight()->watchdog_cancelled_total(), 1u);
  RegistrySnapshot snap = engine_.MetricsSnapshot();
  EXPECT_EQ(snap.counters.at("engine.queries_watchdog_cancelled"), 1u);
  EXPECT_EQ(snap.counters.at("engine.queries_cancelled"), 1u);
  engine_.SetQueryLog(nullptr);
}

class EngineInflightConcurrencyTest
    : public EngineInflightTest,
      public ::testing::WithParamInterface<int> {};

TEST_P(EngineInflightConcurrencyTest, SnapshotsStayConsistentUnderLoad) {
  const int kThreads = GetParam();
  engine_.EnableLiveMonitoring(true);
  MappingSet expected;
  {
    engine_.EnableLiveMonitoring(false);
    Result<MappingSet> r = engine_.Query("g", "((?x p ?y) AND (?a p ?b))");
    ASSERT_TRUE(r.ok());
    expected = std::move(r).value();
    engine_.EnableLiveMonitoring(true);
  }

  std::atomic<bool> failed{false};
  std::mutex reason_mu;
  std::string reason;
  auto fail = [&](const std::string& why) {
    failed.store(true);
    std::lock_guard<std::mutex> lock(reason_mu);
    if (reason.empty()) reason = why;
  };
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Staggered starts so registrations and unregistrations overlap.
      std::this_thread::sleep_for(std::chrono::milliseconds(t));
      for (int i = 0; i < 20; ++i) {
        Result<MappingSet> r =
            engine_.Query("g", "((?x p ?y) AND (?a p ?b))");
        if (!r.ok()) {
          fail("query failed: " + r.status().ToString());
        } else if (!(*r == expected)) {
          fail("result mismatch");
        }
      }
    });
  }
  // Snapshot continuously while the workers churn: every row must be
  // internally consistent regardless of timing.
  std::atomic<bool> done{false};
  std::thread observer([&] {
    while (!done.load()) {
      // The instantaneous occupancy is bounded by the worker count; the
      // snapshot's row count is not (the sweep is per-slot consistent, not
      // a barrier — a worker can re-register into a later slot mid-sweep).
      if (engine_.inflight()->active() > static_cast<size_t>(kThreads)) {
        fail("active() above worker count");
      }
      InflightSnapshot snap = engine_.InflightSnapshot();
      std::set<std::pair<size_t, uint64_t>> seen;
      for (const InflightQueryInfo& q : snap.queries) {
        if (!seen.insert({q.slot, q.generation}).second) {
          fail("duplicate (slot, generation) in one snapshot");
        }
        if (q.graph != "g") fail("bad graph: " + q.graph);
        if (q.query.empty()) fail("empty query text");
        if (q.generation == 0) fail("zero generation");
        if (q.phase > QueryPhase::kFinishing) fail("out-of-range phase");
      }
    }
  });
  for (std::thread& w : workers) w.join();
  done.store(true);
  observer.join();
  EXPECT_FALSE(failed.load()) << reason;
  // No policy tripped: every query must have completed, none cancelled.
  EXPECT_EQ(engine_.inflight()->watchdog_cancelled_total(), 0u);
  EXPECT_EQ(engine_.inflight()->active(), 0u);
  EXPECT_EQ(engine_.inflight()->registered_total(),
            static_cast<uint64_t>(kThreads) * 20);
}

TEST_P(EngineInflightConcurrencyTest, WatchdogCancelsOnlyOffenders) {
  const int kThreads = GetParam();
  QueryLog log;
  engine_.SetQueryLog(&log);
  engine_.EnableLiveMonitoring(true);

  // One offender (unbounded cross product) among well-behaved queries.
  Result<MappingSet> slow_result = Status::Internal("not run");
  std::thread offender([&] { slow_result = engine_.Query("g", kSlowQuery); });
  std::atomic<int> fast_failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        Result<MappingSet> r = engine_.Query("g", "(?x p ?y)");
        if (!r.ok()) fast_failures.fetch_add(1);
      }
    });
  }

  // Cancel only registrations that have been evaluating for >= 50ms: the
  // fast queries never qualify.
  bool cancelled = false;
  for (int i = 0; i < 2000 && !cancelled; ++i) {
    for (const InflightQueryInfo& q : engine_.InflightSnapshot().queries) {
      if (q.phase == QueryPhase::kEvaluating && q.wall_ns >= 50'000'000) {
        cancelled = engine_.inflight()->WatchdogCancel(
            q.slot, q.generation, Status::Cancelled("watchdog: offender"));
      }
    }
    if (!cancelled) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  offender.join();
  for (std::thread& w : workers) w.join();

  ASSERT_TRUE(cancelled);
  EXPECT_EQ(fast_failures.load(), 0);
  ASSERT_FALSE(slow_result.ok());
  EXPECT_EQ(slow_result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(engine_.inflight()->watchdog_cancelled_total(), 1u);
  size_t watchdog_outcomes = 0;
  for (const QueryLogRecord& r : log.Snapshot()) {
    if (r.outcome == "watchdog_cancelled") ++watchdog_outcomes;
  }
  EXPECT_EQ(watchdog_outcomes, 1u);
  engine_.SetQueryLog(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Threads, EngineInflightConcurrencyTest,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace rdfql
