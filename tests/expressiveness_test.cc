// Empirical checks of the structural facts behind the paper's
// expressiveness results: Proposition B.1 (well-designed patterns never
// produce compatible distinct answers — the engine of Theorem 3.6),
// subsumption-freeness of the AFS and well-designed fragments (§5.2), and
// weak monotonicity of simple and ns-patterns (Theorem 5.4 / Cor 5.9).

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "analysis/monotonicity.h"
#include "analysis/well_designed.h"
#include "eval/evaluator.h"
#include "eval/ns.h"
#include "parser/parser.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

class ExpressivenessTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
  Dictionary dict_;
};

// Proposition B.1: a well-designed SPARQL[AOF] pattern cannot output two
// distinct compatible mappings.
TEST_F(ExpressivenessTest, PropB1NoCompatibleAnswersForWd) {
  Rng rng(361);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.allow_filter = true;
  spec.max_depth = 3;
  int tested = 0;
  for (int i = 0; i < 300 && tested < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    if (!IsWellDesigned(p)) continue;
    ++tested;
    for (int trial = 0; trial < 5; ++trial) {
      Graph g = GenerateRandomGraph(14, 4, &dict_, &rng, "i");
      MappingSet r = EvalPattern(g, p);
      for (const Mapping& m1 : r) {
        for (const Mapping& m2 : r) {
          if (m1 == m2) continue;
          EXPECT_FALSE(m1.CompatibleWith(m2));
        }
      }
    }
  }
  EXPECT_GE(tested, 15);
}

// ... and the Theorem 3.6 witness DOES produce two compatible answers on
// the appendix graph G4, which is why no union of well-designed patterns
// can express it.
TEST_F(ExpressivenessTest, Witness36ProducesCompatibleAnswers) {
  Graph g;
  TermId one = dict_.InternIri("1");
  g.Insert(one, dict_.InternIri("a"), dict_.InternIri("b"));
  g.Insert(one, dict_.InternIri("c"), dict_.InternIri("2"));
  g.Insert(one, dict_.InternIri("d"), dict_.InternIri("3"));
  PatternPtr p = Parse("(?X a b) OPT ((?X c ?Y) UNION (?X d ?Z))");
  MappingSet r = EvalPattern(g, p);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.mappings()[0].CompatibleWith(r.mappings()[1]));
}

// §5.2: every SPARQL[AFS] pattern is subsumption-free, and so is every
// well-designed SPARQL[AOF] pattern.
TEST_F(ExpressivenessTest, AfsAndWdAreSubsumptionFree) {
  Rng rng(52);
  PatternGenSpec afs;
  afs.allow_union = false;
  afs.allow_filter = true;
  afs.allow_select = true;
  afs.max_depth = 3;
  for (int i = 0; i < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(afs, &dict_, &rng);
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(14, 4, &dict_, &rng, "i");
      EXPECT_TRUE(IsSubsumptionFree(EvalPattern(g, p)));
    }
  }
  PatternGenSpec aof;
  aof.allow_union = false;
  aof.allow_opt = true;
  aof.allow_filter = true;
  aof.max_depth = 3;
  int tested = 0;
  for (int i = 0; i < 300 && tested < 30; ++i) {
    PatternPtr p = GenerateRandomPattern(aof, &dict_, &rng);
    if (!IsWellDesigned(p)) continue;
    ++tested;
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = GenerateRandomGraph(14, 4, &dict_, &rng, "j");
      EXPECT_TRUE(IsSubsumptionFree(EvalPattern(g, p)));
    }
  }
  EXPECT_GE(tested, 10);
}

// Theorem 5.4 prerequisites: every simple pattern is subsumption-free and
// weakly monotone; Cor 5.9: every ns-pattern is weakly monotone.
TEST_F(ExpressivenessTest, SimpleAndNsPatternsAreOpenWorldSafe) {
  Rng rng(54);
  PatternGenSpec aufs;
  aufs.allow_filter = true;
  aufs.allow_select = true;
  aufs.max_depth = 2;
  MonotonicityOptions opts;
  opts.trials = 80;
  for (int i = 0; i < 25; ++i) {
    // Build a random ns-pattern with 1-3 simple disjuncts.
    int width = 1 + static_cast<int>(rng.NextBelow(3));
    std::vector<PatternPtr> disjuncts;
    for (int d = 0; d < width; ++d) {
      disjuncts.push_back(
          Pattern::Ns(GenerateRandomPattern(aufs, &dict_, &rng)));
    }
    PatternPtr p = Pattern::UnionAll(disjuncts);
    ASSERT_TRUE(IsNsPattern(p));
    EXPECT_TRUE(LooksWeaklyMonotone(p, &dict_, opts));
    if (width == 1) {
      EXPECT_TRUE(LooksSubsumptionFree(p, &dict_, opts));
    }
  }
}

// Section 8's future-work claim, tested: projection on top of simple and
// ns-patterns preserves weak monotonicity.
TEST_F(ExpressivenessTest, ProjectedFragmentsStayWeaklyMonotone) {
  Rng rng(88);
  PatternGenSpec aufs;
  aufs.allow_filter = true;
  aufs.max_depth = 2;
  MonotonicityOptions opts;
  opts.trials = 80;
  for (int i = 0; i < 25; ++i) {
    PatternPtr simple = Pattern::Ns(GenerateRandomPattern(aufs, &dict_, &rng));
    const std::vector<VarId>& vars = simple->ScopeVars();
    std::vector<VarId> projection;
    for (VarId v : vars) {
      if (rng.NextBool(0.5)) projection.push_back(v);
    }
    PatternPtr projected = Pattern::Select(projection, simple);
    EXPECT_TRUE(IsProjectedSimplePattern(projected));
    EXPECT_TRUE(LooksWeaklyMonotone(projected, &dict_, opts)) << i;
  }
}

// ...and a projected simple pattern can express queries outside
// SP-SPARQL: projection can reintroduce subsumed answers, which no
// (subsumption-free) simple pattern produces.
TEST_F(ExpressivenessTest, ProjectionCanBreakSubsumptionFreeness) {
  PatternPtr p = Parse(
      "(SELECT {?x ?y} WHERE NS(((?x a b) AND (?x c ?y)) UNION "
      "((?x a b) AND (?z d ?w))))");
  EXPECT_TRUE(IsProjectedSimplePattern(p));
  Graph g;
  TermId a = dict_.InternIri("a"), b = dict_.InternIri("b"),
         c = dict_.InternIri("c"), d = dict_.InternIri("d");
  TermId s = dict_.InternIri("s"), m = dict_.InternIri("m"),
         u = dict_.InternIri("u"), w = dict_.InternIri("w");
  g.Insert(s, a, b);
  g.Insert(s, c, m);
  g.Insert(u, d, w);
  MappingSet r = EvalPattern(g, p);
  EXPECT_FALSE(IsSubsumptionFree(r));
}

// The paper's motivating asymmetry (§5.3): SPARQL[AUFS] patterns are
// monotone but can produce subsumed answers; simple patterns are
// subsumption-free but not monotone. USP contains both behaviours.
TEST_F(ExpressivenessTest, IncomparabilityOfAufsAndSp) {
  // An AUFS pattern with subsumed answers:
  PatternPtr aufs = Parse("(?x a ?y) UNION ((?x a ?y) AND (?y b ?z))");
  Graph g;
  TermId a = dict_.InternIri("a"), b = dict_.InternIri("b");
  g.Insert(dict_.InternIri("s"), a, dict_.InternIri("o"));
  g.Insert(dict_.InternIri("o"), b, dict_.InternIri("t"));
  EXPECT_FALSE(IsSubsumptionFree(EvalPattern(g, aufs)));
  EXPECT_TRUE(LooksMonotone(aufs, &dict_));

  // The corresponding simple pattern: subsumption-free but not monotone.
  PatternPtr sp = Pattern::Ns(aufs);
  EXPECT_TRUE(IsSubsumptionFree(EvalPattern(g, sp)));
  EXPECT_FALSE(LooksMonotone(sp, &dict_));
  EXPECT_TRUE(LooksWeaklyMonotone(sp, &dict_));
}

}  // namespace
}  // namespace rdfql
