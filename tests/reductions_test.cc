// Tests of the Section 7 reductions: the SAT gadget, the SAT-UNSAT →
// SP–SPARQL reduction (Theorem 7.1), the Lemma H.1 combiner, and the
// BH_2k / PNP‖ reductions (Theorems 7.2 and 7.3) — each validated against
// the from-scratch SAT/coloring oracles by actually *evaluating* the
// produced instances with the SPARQL engine.

#include <gtest/gtest.h>

#include "analysis/fragments.h"
#include "complexity/hierarchy_reductions.h"
#include "complexity/sat_solver.h"

namespace rdfql {
namespace {

TEST(SatReductionTest, GadgetIsSingletonIffSatisfiable) {
  Rng rng(1);
  Dictionary dict;
  for (int round = 0; round < 60; ++round) {
    int n = 2 + static_cast<int>(rng.NextBelow(4));
    int m = 1 + static_cast<int>(rng.NextBelow(8));
    int k = 2 + static_cast<int>(rng.NextBelow(2));
    if (k > n) k = n;
    Cnf phi = RandomCnf(n, m, k, &rng);
    EvalInstance inst =
        SatToPattern(phi, &dict, "t" + std::to_string(round));
    MappingSet result = EvalPattern(inst.graph, inst.pattern);
    if (SolveSat(phi).satisfiable) {
      EXPECT_EQ(result.size(), 1u);
      EXPECT_TRUE(result.Contains(inst.mapping));
    } else {
      EXPECT_TRUE(result.empty());
    }
  }
}

TEST(SatReductionTest, GadgetPatternIsAufs) {
  Rng rng(2);
  Dictionary dict;
  Cnf phi = RandomCnf(3, 4, 2, &rng);
  EvalInstance inst = SatToPattern(phi, &dict, "frag");
  EXPECT_TRUE(InFragment(inst.pattern, "AUFS"));
}

TEST(SatReductionTest, EmptyClauseMakesGadgetEmpty) {
  Dictionary dict;
  Cnf phi;
  phi.num_vars = 2;
  phi.AddClause({});
  EvalInstance inst = SatToPattern(phi, &dict, "empty");
  EXPECT_TRUE(EvalPattern(inst.graph, inst.pattern).empty());
}

TEST(SatReductionTest, NoClausesMeansTriviallySat) {
  Dictionary dict;
  Cnf phi;
  phi.num_vars = 2;
  EvalInstance inst = SatToPattern(phi, &dict, "trivial");
  EXPECT_TRUE(DecideByEvaluation(inst));
}

// Theorem 7.1: the reduction decides SAT-UNSAT through SPARQL evaluation.
TEST(SatUnsatTest, ReductionDecidesSatUnsat) {
  Rng rng(71);
  Dictionary dict;
  for (int round = 0; round < 40; ++round) {
    Cnf phi = RandomCnf(3, 1 + static_cast<int>(rng.NextBelow(7)), 2, &rng);
    Cnf psi = RandomCnf(3, 1 + static_cast<int>(rng.NextBelow(7)), 2, &rng);
    EvalInstance inst = SatUnsatToSimplePattern(
        phi, psi, &dict, "su" + std::to_string(round));

    EXPECT_TRUE(IsSimplePattern(inst.pattern));
    bool expected =
        SolveSat(phi).satisfiable && !SolveSat(psi).satisfiable;
    EXPECT_EQ(DecideByEvaluation(inst), expected) << "round " << round;
  }
}

// Lemma H.1: the combiner implements disjunction of instances.
TEST(CombinerTest, DisjunctionOfInstances) {
  Rng rng(81);
  Dictionary dict;
  for (int round = 0; round < 25; ++round) {
    int n = 2 + static_cast<int>(rng.NextBelow(3));
    std::vector<EvalInstance> pieces;
    bool any = false;
    for (int i = 0; i < n; ++i) {
      Cnf phi = RandomCnf(3, 1 + static_cast<int>(rng.NextBelow(6)), 2, &rng);
      Cnf psi = RandomCnf(3, 1 + static_cast<int>(rng.NextBelow(6)), 2, &rng);
      pieces.push_back(SatUnsatToSimplePattern(
          phi, psi, &dict,
          "c" + std::to_string(round) + "_" + std::to_string(i)));
      any = any || (SolveSat(phi).satisfiable &&
                    !SolveSat(psi).satisfiable);
    }
    EvalInstance combined = CombineDisjunction(pieces, &dict);
    EXPECT_TRUE(IsNsPattern(combined.pattern));
    EXPECT_EQ(NsPatternWidth(combined.pattern), pieces.size());
    EXPECT_EQ(DecideByEvaluation(combined), any) << "round " << round;
  }
}

// Lemma G.2: if I(G1) ∩ I(G2) = ∅, P has no variable-only triple patterns
// and I(P) ⊆ I(G1), then ⟦P⟧_{G1 ∪ G2} = ⟦P⟧_{G1}. This locality lemma is
// what lets the reductions evaluate each SAT gadget inside the combined
// graph; test it on the gadgets themselves plus random extensions.
TEST(SatReductionTest, LemmaG2DisjointGraphLocality) {
  Rng rng(92);
  Dictionary dict;
  for (int round = 0; round < 20; ++round) {
    Cnf phi = RandomCnf(3, 4, 2, &rng);
    EvalInstance inst =
        SatToPattern(phi, &dict, "g2_" + std::to_string(round));
    // A disjoint graph over fresh IRIs.
    Graph noise;
    for (int i = 0; i < 10; ++i) {
      noise.Insert(dict.FreshIri("noise"), dict.FreshIri("noise"),
                   dict.FreshIri("noise"));
    }
    Graph combined = Graph::Union(inst.graph, noise);
    EXPECT_EQ(EvalPattern(inst.graph, inst.pattern),
              EvalPattern(combined, inst.pattern));
  }
}

TEST(HierarchyTest, MkSetShape) {
  EXPECT_EQ(MkSet(1), (std::vector<int>{7}));
  EXPECT_EQ(MkSet(2), (std::vector<int>{13, 15}));
  EXPECT_EQ(MkSet(3), (std::vector<int>{19, 21, 23}));
}

// Theorem 7.2's machinery on small color sets (the paper's M_k = {6k+1,…}
// already at k = 1 demands evaluating 7-colorability, which is the
// theorem's point but too heavy for a unit test; ExactColorSetToUsp is the
// same construction parameterized by the color set).
TEST(HierarchyTest, ExactColorSetViaUsp) {
  Dictionary dict;
  // C5 has χ = 3; K4 has χ = 4; a path has χ = 2.
  SimpleGraph c5;
  c5.n = 5;
  for (int i = 0; i < 5; ++i) c5.edges.emplace_back(i, (i + 1) % 5);
  SimpleGraph path;
  path.n = 4;
  for (int i = 0; i < 3; ++i) path.edges.emplace_back(i, i + 1);

  struct Case {
    SimpleGraph graph;
    std::vector<int> colors;
  };
  std::vector<Case> cases = {
      {c5, {3}},        // χ = 3 ∈ {3}: yes
      {c5, {2, 4}},     // χ = 3 ∉ {2,4}: no
      {path, {2}},      // yes
      {path, {3}},      // no
      {CompleteGraph(4), {3, 4}},  // χ = 4: yes
  };
  int index = 0;
  for (const Case& c : cases) {
    bool expected = IsExactColorSetColorable(c.graph, c.colors);
    EvalInstance inst = ExactColorSetToUsp(c.graph, c.colors, &dict);
    EXPECT_EQ(NsPatternWidth(inst.pattern), c.colors.size());
    EXPECT_EQ(DecideByEvaluation(inst), expected) << "case " << index;
    ++index;
  }
}

TEST(HierarchyTest, ExactMkIsColorSetWithMk) {
  // Structural check only (evaluation of the k = 1 instance encodes
  // 7-colorability and is exercised by bench_complexity instead).
  Dictionary dict;
  SimpleGraph g = CompleteGraph(3);
  EvalInstance inst = ExactMkColorabilityToUsp(g, 1, &dict);
  EXPECT_EQ(NsPatternWidth(inst.pattern), 1u);
  EXPECT_FALSE(IsExactMkColorable(g, 1));  // χ(K3)=3 ∉ {7}
}

// Theorem 7.3 on small formulas, cross-checked against the direct decider.
TEST(HierarchyTest, MaxOddSatViaUsp) {
  Rng rng(73);
  Dictionary dict;
  int positives = 0;
  for (int round = 0; round < 12; ++round) {
    Cnf phi = RandomCnf(3, 1 + static_cast<int>(rng.NextBelow(4)), 2, &rng);
    bool expected = IsMaxOddSat(phi);
    positives += expected ? 1 : 0;
    EvalInstance inst = MaxOddSatToUsp(phi, &dict);
    EXPECT_TRUE(IsNsPattern(inst.pattern));
    EXPECT_EQ(DecideByEvaluation(inst), expected) << "round " << round;
  }
  // The sample should include both outcomes.
  EXPECT_GT(positives, 0);
  EXPECT_LT(positives, 12);
}

TEST(HierarchyTest, IsMaxOddSatReference) {
  // ϕ = (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2): max-true = 1 with x3 absent... add x3
  // free: max-true = 2 → even → false.
  Cnf phi;
  phi.num_vars = 3;
  phi.AddClause({1, 2});
  phi.AddClause({-1, -2});
  EXPECT_FALSE(IsMaxOddSat(phi));

  // Forcing x3 false: max-true = 1 → odd → true.
  phi.AddClause({-3});
  EXPECT_TRUE(IsMaxOddSat(phi));

  // Unsatisfiable: false.
  Cnf unsat;
  unsat.num_vars = 1;
  unsat.AddClause({1});
  unsat.AddClause({-1});
  EXPECT_FALSE(IsMaxOddSat(unsat));
}

}  // namespace
}  // namespace rdfql
