#include "algebra/builtin.h"

#include <gtest/gtest.h>

namespace rdfql {
namespace {

class BuiltinTest : public ::testing::Test {
 protected:
  Dictionary dict_;
  VarId x_ = dict_.InternVar("x");
  VarId y_ = dict_.InternVar("y");
  TermId a_ = dict_.InternIri("a");
  TermId b_ = dict_.InternIri("b");
};

TEST_F(BuiltinTest, BoundSemantics) {
  BuiltinPtr r = Builtin::Bound(x_);
  Mapping m;
  EXPECT_FALSE(r->Eval(m));
  m.Set(x_, a_);
  EXPECT_TRUE(r->Eval(m));
}

TEST_F(BuiltinTest, EqConstSemantics) {
  BuiltinPtr r = Builtin::EqConst(x_, a_);
  Mapping m;
  EXPECT_FALSE(r->Eval(m));  // unbound atoms are false
  m.Set(x_, b_);
  EXPECT_FALSE(r->Eval(m));
  m.Set(x_, a_);
  EXPECT_TRUE(r->Eval(m));
}

TEST_F(BuiltinTest, EqVarsSemantics) {
  BuiltinPtr r = Builtin::EqVars(x_, y_);
  Mapping m;
  EXPECT_FALSE(r->Eval(m));
  m.Set(x_, a_);
  EXPECT_FALSE(r->Eval(m));  // ?y unbound
  m.Set(y_, a_);
  EXPECT_TRUE(r->Eval(m));
  m.Set(y_, b_);
  EXPECT_FALSE(r->Eval(m));
}

TEST_F(BuiltinTest, BooleanConnectives) {
  Mapping m;
  m.Set(x_, a_);
  BuiltinPtr bound_x = Builtin::Bound(x_);
  BuiltinPtr bound_y = Builtin::Bound(y_);
  EXPECT_TRUE(Builtin::Or(bound_x, bound_y)->Eval(m));
  EXPECT_FALSE(Builtin::And(bound_x, bound_y)->Eval(m));
  EXPECT_TRUE(Builtin::Not(bound_y)->Eval(m));
  EXPECT_FALSE(Builtin::Not(bound_x)->Eval(m));
}

TEST_F(BuiltinTest, ConstantFolding) {
  EXPECT_EQ(Builtin::And(Builtin::True(), Builtin::Bound(x_))->kind(),
            Builtin::Kind::kBound);
  EXPECT_EQ(Builtin::And(Builtin::False(), Builtin::Bound(x_))->kind(),
            Builtin::Kind::kFalse);
  EXPECT_EQ(Builtin::Or(Builtin::True(), Builtin::Bound(x_))->kind(),
            Builtin::Kind::kTrue);
  EXPECT_EQ(Builtin::Not(Builtin::True())->kind(), Builtin::Kind::kFalse);
  EXPECT_EQ(Builtin::AndAll({})->kind(), Builtin::Kind::kTrue);
  EXPECT_EQ(Builtin::OrAll({})->kind(), Builtin::Kind::kFalse);
}

TEST_F(BuiltinTest, CollectVars) {
  BuiltinPtr r = Builtin::Or(Builtin::EqVars(x_, y_),
                             Builtin::Not(Builtin::EqConst(x_, a_)));
  std::set<VarId> vars;
  r->CollectVars(&vars);
  EXPECT_EQ(vars, (std::set<VarId>{x_, y_}));
  std::set<TermId> iris;
  r->CollectIris(&iris);
  EXPECT_EQ(iris, (std::set<TermId>{a_}));
}

TEST_F(BuiltinTest, ToStringRendersPaperNotation) {
  EXPECT_EQ(Builtin::Bound(x_)->ToString(dict_), "bound(?x)");
  EXPECT_EQ(Builtin::EqConst(x_, a_)->ToString(dict_), "?x = a");
  EXPECT_EQ(Builtin::EqVars(x_, y_)->ToString(dict_), "?x = ?y");
}

TEST_F(BuiltinTest, StructuralEquality) {
  EXPECT_TRUE(Builtin::Equal(Builtin::Bound(x_), Builtin::Bound(x_)));
  EXPECT_FALSE(Builtin::Equal(Builtin::Bound(x_), Builtin::Bound(y_)));
  EXPECT_TRUE(Builtin::Equal(
      Builtin::And(Builtin::Bound(x_), Builtin::Bound(y_)),
      Builtin::And(Builtin::Bound(x_), Builtin::Bound(y_))));
}

}  // namespace
}  // namespace rdfql
