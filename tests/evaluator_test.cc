#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "rdf/ntriples.h"
#include "util/random.h"
#include "workload/graph_generator.h"
#include "workload/pattern_generator.h"

namespace rdfql {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  Graph Load(const char* text) {
    Graph g;
    Status st = ParseNTriples(text, &dict_, &g);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return g;
  }

  PatternPtr Parse(const std::string& text) {
    Result<PatternPtr> r = ParsePattern(text, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }

  Mapping Make(std::vector<std::pair<std::string, std::string>> bindings) {
    std::vector<std::pair<VarId, TermId>> ids;
    for (const auto& [var, iri] : bindings) {
      ids.emplace_back(dict_.InternVar(var), dict_.InternIri(iri));
    }
    return Mapping::FromBindings(std::move(ids));
  }

  Dictionary dict_;
};

TEST_F(EvaluatorTest, TriplePatternMatching) {
  Graph g = Load("s p o .\ns p o2 .\ns2 p o .");
  MappingSet r = EvalPattern(g, Parse("(?x p ?y)"));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.Contains(Make({{"x", "s"}, {"y", "o"}})));
  EXPECT_TRUE(r.Contains(Make({{"x", "s2"}, {"y", "o"}})));
}

TEST_F(EvaluatorTest, TriplePatternWithRepeatedVariable) {
  Graph g = Load("a p a .\na p b .");
  MappingSet r = EvalPattern(g, Parse("(?x p ?x)"));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Make({{"x", "a"}})));
}

TEST_F(EvaluatorTest, GroundTriplePatternYieldsEmptyMapping) {
  Graph g = Load("a p b .");
  MappingSet r = EvalPattern(g, Parse("(a p b)"));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.mappings()[0].empty());
  EXPECT_TRUE(EvalPattern(g, Parse("(a p c)")).empty());
}

TEST_F(EvaluatorTest, AndJoins) {
  Graph g = Load("a knows b .\nb knows c .\nb age x .");
  MappingSet r = EvalPattern(g, Parse("(?x knows ?y) AND (?y age ?a)"));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Make({{"x", "a"}, {"y", "b"}, {"a", "x"}})));
}

TEST_F(EvaluatorTest, UnionCollectsBoth) {
  Graph g = Load("a p b .\nc q d .");
  MappingSet r = EvalPattern(g, Parse("(?x p ?y) UNION (?x q ?y)"));
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(EvaluatorTest, OptExtendsWhenPossible) {
  Graph g = Load("a born chile .\nb born chile .\na email m .");
  MappingSet r = EvalPattern(g, Parse("(?x born chile) OPT (?x email ?e)"));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Make({{"x", "a"}, {"e", "m"}})));
  EXPECT_TRUE(r.Contains(Make({{"x", "b"}})));
}

TEST_F(EvaluatorTest, MinusKeepsIncompatibleOnly) {
  Graph g = Load("a born chile .\nb born chile .\na email m .");
  MappingSet r = EvalPattern(g, Parse("(?x born chile) MINUS (?x email ?e)"));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Make({{"x", "b"}})));
}

TEST_F(EvaluatorTest, FilterApplies) {
  Graph g = Load("a p b .\nc p d .");
  MappingSet r = EvalPattern(g, Parse("(?x p ?y) FILTER ?x = a"));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Make({{"x", "a"}, {"y", "b"}})));
}

TEST_F(EvaluatorTest, SelectProjects) {
  Graph g = Load("a p b .\nc p b .");
  MappingSet r = EvalPattern(g, Parse("(SELECT {?y} WHERE (?x p ?y))"));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Make({{"y", "b"}})));
}

TEST_F(EvaluatorTest, NsKeepsMaximalAnswers) {
  Graph g = Load("a p b .\na q c .");
  // (?x p b) UNION ((?x p b) AND (?x q ?y)) produces [x→a] and [x→a,y→c].
  MappingSet r = EvalPattern(
      g, Parse("NS((?x p b) UNION ((?x p b) AND (?x q ?y)))"));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Make({{"x", "a"}, {"y", "c"}})));
}

TEST_F(EvaluatorTest, OptIsJoinPlusMinus) {
  // ⟦P1 OPT P2⟧ = ⟦P1 AND P2⟧ ∪ ⟦P1 MINUS P2⟧ on random data.
  Rng rng(5);
  PatternGenSpec spec;
  spec.max_depth = 2;
  for (int i = 0; i < 30; ++i) {
    PatternPtr p1 = GenerateRandomPattern(spec, &dict_, &rng);
    PatternPtr p2 = GenerateRandomPattern(spec, &dict_, &rng);
    Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "i");
    MappingSet opt = EvalPattern(g, Pattern::Opt(p1, p2));
    MappingSet decomposed = MappingSet::UnionSets(
        EvalPattern(g, Pattern::And(p1, p2)),
        EvalPattern(g, Pattern::Minus(p1, p2)));
    EXPECT_EQ(opt, decomposed);
  }
}

TEST_F(EvaluatorTest, JoinEnginesAgreeOnRandomPatterns) {
  Rng rng(17);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.allow_minus = spec.allow_ns = true;
  spec.max_depth = 3;
  EvalOptions nested;
  nested.join = EvalOptions::Join::kNestedLoop;
  nested.ns = EvalOptions::NsAlgo::kNaive;
  for (int i = 0; i < 60; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    Graph g = GenerateRandomGraph(15, 4, &dict_, &rng, "i");
    EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, p, nested));
  }
}

TEST_F(EvaluatorTest, IndexNestedLoopJoinAgrees) {
  Rng rng(818);
  PatternGenSpec spec;
  spec.allow_opt = spec.allow_filter = spec.allow_select = true;
  spec.max_depth = 3;
  EvalOptions inl;
  inl.join = EvalOptions::Join::kIndexNestedLoop;
  for (int i = 0; i < 60; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    Graph g = GenerateRandomGraph(15, 4, &dict_, &rng, "inl");
    EXPECT_EQ(EvalPattern(g, p), EvalPattern(g, p, inl));
  }
}

TEST_F(EvaluatorTest, IndexNestedLoopHandlesRepeatedVars) {
  Graph g = Load("a p a .\na p b .\nb q a .");
  EvalOptions inl;
  inl.join = EvalOptions::Join::kIndexNestedLoop;
  // Right triple shares ?x twice: (?x q ?x) never matches; (?y q ?x) does.
  MappingSet r = EvalPattern(g, Parse("(?x p ?x) AND (?y q ?x)"), inl);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Make({{"x", "a"}, {"y", "b"}})));
  EXPECT_TRUE(
      EvalPattern(g, Parse("(?x p ?y) AND (?x q ?x)"), inl).empty());
}

TEST_F(EvaluatorTest, OptAgreesAcrossJoinStrategies) {
  // Promised by the kIndexNestedLoop note in evaluator.h: OPT deliberately
  // skips the index-join shortcut (the difference half needs ⟦P2⟧G
  // materialized anyway), so all three strategies must agree on OPT-heavy
  // patterns — both where the optional side matches and where it dangles.
  Graph g = Load("a p b .\nc p d .\nb q e .\ne r f .");
  const char* queries[] = {
      "(?x p ?y) OPT (?y q ?z)",
      "((?x p ?y) OPT (?y q ?z)) OPT (?z r ?w)",
      "((?x p ?y) AND (?y q ?z)) OPT (?z r ?w)",
      "(?x p ?y) OPT ((?y q ?z) AND (?z r ?w))",
  };
  EvalOptions hash, nested, inl;
  hash.join = EvalOptions::Join::kHash;
  nested.join = EvalOptions::Join::kNestedLoop;
  inl.join = EvalOptions::Join::kIndexNestedLoop;
  for (const char* q : queries) {
    PatternPtr p = Parse(q);
    MappingSet expected = EvalPattern(g, p, hash);
    EXPECT_EQ(expected, EvalPattern(g, p, nested)) << q;
    EXPECT_EQ(expected, EvalPattern(g, p, inl)) << q;
  }
  // And on random OPT-rich patterns.
  Rng rng(515);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.max_depth = 4;
  for (int i = 0; i < 40; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    Graph rg = GenerateRandomGraph(15, 4, &dict_, &rng, "opt");
    MappingSet expected = EvalPattern(rg, p, hash);
    EXPECT_EQ(expected, EvalPattern(rg, p, nested));
    EXPECT_EQ(expected, EvalPattern(rg, p, inl));
  }
}

TEST_F(EvaluatorTest, EvalMaxEqualsNsWrap) {
  Rng rng(23);
  PatternGenSpec spec;
  spec.allow_opt = true;
  spec.max_depth = 3;
  for (int i = 0; i < 30; ++i) {
    PatternPtr p = GenerateRandomPattern(spec, &dict_, &rng);
    Graph g = GenerateRandomGraph(12, 4, &dict_, &rng, "i");
    Evaluator ev(&g);
    EXPECT_EQ(ev.EvalMax(p), ev.Eval(Pattern::Ns(p)));
  }
}

TEST_F(EvaluatorTest, EmptyGraphYieldsNoAnswers) {
  Graph g;
  EXPECT_TRUE(EvalPattern(g, Parse("(?x p ?y) OPT (?x q ?z)")).empty());
}

}  // namespace
}  // namespace rdfql
