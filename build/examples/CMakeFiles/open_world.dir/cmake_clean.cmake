file(REMOVE_RECURSE
  "CMakeFiles/open_world.dir/open_world.cc.o"
  "CMakeFiles/open_world.dir/open_world.cc.o.d"
  "open_world"
  "open_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
