# Empty dependencies file for open_world.
# This may be replaced when dependencies are built.
