# Empty dependencies file for construct_views.
# This may be replaced when dependencies are built.
