file(REMOVE_RECURSE
  "CMakeFiles/construct_views.dir/construct_views.cc.o"
  "CMakeFiles/construct_views.dir/construct_views.cc.o.d"
  "construct_views"
  "construct_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/construct_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
