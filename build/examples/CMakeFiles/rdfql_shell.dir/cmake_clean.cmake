file(REMOVE_RECURSE
  "CMakeFiles/rdfql_shell.dir/rdfql_shell.cc.o"
  "CMakeFiles/rdfql_shell.dir/rdfql_shell.cc.o.d"
  "rdfql_shell"
  "rdfql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
