# Empty dependencies file for rdfql_shell.
# This may be replaced when dependencies are built.
