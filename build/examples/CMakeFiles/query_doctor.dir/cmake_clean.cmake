file(REMOVE_RECURSE
  "CMakeFiles/query_doctor.dir/query_doctor.cc.o"
  "CMakeFiles/query_doctor.dir/query_doctor.cc.o.d"
  "query_doctor"
  "query_doctor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_doctor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
