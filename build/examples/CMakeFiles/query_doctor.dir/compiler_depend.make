# Empty compiler generated dependencies file for query_doctor.
# This may be replaced when dependencies are built.
