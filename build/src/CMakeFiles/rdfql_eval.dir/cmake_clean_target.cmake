file(REMOVE_RECURSE
  "librdfql_eval.a"
)
