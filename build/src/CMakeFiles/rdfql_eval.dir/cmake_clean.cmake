file(REMOVE_RECURSE
  "CMakeFiles/rdfql_eval.dir/eval/evaluator.cc.o"
  "CMakeFiles/rdfql_eval.dir/eval/evaluator.cc.o.d"
  "CMakeFiles/rdfql_eval.dir/eval/explain.cc.o"
  "CMakeFiles/rdfql_eval.dir/eval/explain.cc.o.d"
  "CMakeFiles/rdfql_eval.dir/eval/ns.cc.o"
  "CMakeFiles/rdfql_eval.dir/eval/ns.cc.o.d"
  "CMakeFiles/rdfql_eval.dir/eval/reference_evaluator.cc.o"
  "CMakeFiles/rdfql_eval.dir/eval/reference_evaluator.cc.o.d"
  "librdfql_eval.a"
  "librdfql_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
