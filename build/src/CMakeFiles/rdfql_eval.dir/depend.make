# Empty dependencies file for rdfql_eval.
# This may be replaced when dependencies are built.
