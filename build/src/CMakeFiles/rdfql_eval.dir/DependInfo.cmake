
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/evaluator.cc" "src/CMakeFiles/rdfql_eval.dir/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/rdfql_eval.dir/eval/evaluator.cc.o.d"
  "/root/repo/src/eval/explain.cc" "src/CMakeFiles/rdfql_eval.dir/eval/explain.cc.o" "gcc" "src/CMakeFiles/rdfql_eval.dir/eval/explain.cc.o.d"
  "/root/repo/src/eval/ns.cc" "src/CMakeFiles/rdfql_eval.dir/eval/ns.cc.o" "gcc" "src/CMakeFiles/rdfql_eval.dir/eval/ns.cc.o.d"
  "/root/repo/src/eval/reference_evaluator.cc" "src/CMakeFiles/rdfql_eval.dir/eval/reference_evaluator.cc.o" "gcc" "src/CMakeFiles/rdfql_eval.dir/eval/reference_evaluator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfql_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
