file(REMOVE_RECURSE
  "librdfql_construct.a"
)
