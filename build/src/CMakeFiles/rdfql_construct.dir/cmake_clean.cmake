file(REMOVE_RECURSE
  "CMakeFiles/rdfql_construct.dir/construct/construct_query.cc.o"
  "CMakeFiles/rdfql_construct.dir/construct/construct_query.cc.o.d"
  "librdfql_construct.a"
  "librdfql_construct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_construct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
