# Empty compiler generated dependencies file for rdfql_construct.
# This may be replaced when dependencies are built.
