file(REMOVE_RECURSE
  "librdfql_transform.a"
)
