file(REMOVE_RECURSE
  "CMakeFiles/rdfql_transform.dir/eval/wd_evaluator.cc.o"
  "CMakeFiles/rdfql_transform.dir/eval/wd_evaluator.cc.o.d"
  "CMakeFiles/rdfql_transform.dir/transform/ns_elimination.cc.o"
  "CMakeFiles/rdfql_transform.dir/transform/ns_elimination.cc.o.d"
  "CMakeFiles/rdfql_transform.dir/transform/opt_rewriter.cc.o"
  "CMakeFiles/rdfql_transform.dir/transform/opt_rewriter.cc.o.d"
  "CMakeFiles/rdfql_transform.dir/transform/select_free.cc.o"
  "CMakeFiles/rdfql_transform.dir/transform/select_free.cc.o.d"
  "CMakeFiles/rdfql_transform.dir/transform/union_normal_form.cc.o"
  "CMakeFiles/rdfql_transform.dir/transform/union_normal_form.cc.o.d"
  "CMakeFiles/rdfql_transform.dir/transform/wd_to_simple.cc.o"
  "CMakeFiles/rdfql_transform.dir/transform/wd_to_simple.cc.o.d"
  "librdfql_transform.a"
  "librdfql_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
