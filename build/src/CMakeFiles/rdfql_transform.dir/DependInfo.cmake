
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/wd_evaluator.cc" "src/CMakeFiles/rdfql_transform.dir/eval/wd_evaluator.cc.o" "gcc" "src/CMakeFiles/rdfql_transform.dir/eval/wd_evaluator.cc.o.d"
  "/root/repo/src/transform/ns_elimination.cc" "src/CMakeFiles/rdfql_transform.dir/transform/ns_elimination.cc.o" "gcc" "src/CMakeFiles/rdfql_transform.dir/transform/ns_elimination.cc.o.d"
  "/root/repo/src/transform/opt_rewriter.cc" "src/CMakeFiles/rdfql_transform.dir/transform/opt_rewriter.cc.o" "gcc" "src/CMakeFiles/rdfql_transform.dir/transform/opt_rewriter.cc.o.d"
  "/root/repo/src/transform/select_free.cc" "src/CMakeFiles/rdfql_transform.dir/transform/select_free.cc.o" "gcc" "src/CMakeFiles/rdfql_transform.dir/transform/select_free.cc.o.d"
  "/root/repo/src/transform/union_normal_form.cc" "src/CMakeFiles/rdfql_transform.dir/transform/union_normal_form.cc.o" "gcc" "src/CMakeFiles/rdfql_transform.dir/transform/union_normal_form.cc.o.d"
  "/root/repo/src/transform/wd_to_simple.cc" "src/CMakeFiles/rdfql_transform.dir/transform/wd_to_simple.cc.o" "gcc" "src/CMakeFiles/rdfql_transform.dir/transform/wd_to_simple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfql_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
