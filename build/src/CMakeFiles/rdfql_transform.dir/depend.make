# Empty dependencies file for rdfql_transform.
# This may be replaced when dependencies are built.
