file(REMOVE_RECURSE
  "CMakeFiles/rdfql_workload.dir/workload/graph_generator.cc.o"
  "CMakeFiles/rdfql_workload.dir/workload/graph_generator.cc.o.d"
  "CMakeFiles/rdfql_workload.dir/workload/pattern_generator.cc.o"
  "CMakeFiles/rdfql_workload.dir/workload/pattern_generator.cc.o.d"
  "CMakeFiles/rdfql_workload.dir/workload/scenarios.cc.o"
  "CMakeFiles/rdfql_workload.dir/workload/scenarios.cc.o.d"
  "CMakeFiles/rdfql_workload.dir/workload/university_generator.cc.o"
  "CMakeFiles/rdfql_workload.dir/workload/university_generator.cc.o.d"
  "librdfql_workload.a"
  "librdfql_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
