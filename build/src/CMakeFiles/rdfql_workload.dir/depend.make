# Empty dependencies file for rdfql_workload.
# This may be replaced when dependencies are built.
