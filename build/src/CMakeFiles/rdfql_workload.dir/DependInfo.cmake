
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/graph_generator.cc" "src/CMakeFiles/rdfql_workload.dir/workload/graph_generator.cc.o" "gcc" "src/CMakeFiles/rdfql_workload.dir/workload/graph_generator.cc.o.d"
  "/root/repo/src/workload/pattern_generator.cc" "src/CMakeFiles/rdfql_workload.dir/workload/pattern_generator.cc.o" "gcc" "src/CMakeFiles/rdfql_workload.dir/workload/pattern_generator.cc.o.d"
  "/root/repo/src/workload/scenarios.cc" "src/CMakeFiles/rdfql_workload.dir/workload/scenarios.cc.o" "gcc" "src/CMakeFiles/rdfql_workload.dir/workload/scenarios.cc.o.d"
  "/root/repo/src/workload/university_generator.cc" "src/CMakeFiles/rdfql_workload.dir/workload/university_generator.cc.o" "gcc" "src/CMakeFiles/rdfql_workload.dir/workload/university_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfql_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
