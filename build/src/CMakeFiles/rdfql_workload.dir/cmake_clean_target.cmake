file(REMOVE_RECURSE
  "librdfql_workload.a"
)
