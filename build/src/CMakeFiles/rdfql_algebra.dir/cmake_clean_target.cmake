file(REMOVE_RECURSE
  "librdfql_algebra.a"
)
