file(REMOVE_RECURSE
  "CMakeFiles/rdfql_algebra.dir/algebra/builtin.cc.o"
  "CMakeFiles/rdfql_algebra.dir/algebra/builtin.cc.o.d"
  "CMakeFiles/rdfql_algebra.dir/algebra/mapping.cc.o"
  "CMakeFiles/rdfql_algebra.dir/algebra/mapping.cc.o.d"
  "CMakeFiles/rdfql_algebra.dir/algebra/mapping_set.cc.o"
  "CMakeFiles/rdfql_algebra.dir/algebra/mapping_set.cc.o.d"
  "CMakeFiles/rdfql_algebra.dir/algebra/pattern.cc.o"
  "CMakeFiles/rdfql_algebra.dir/algebra/pattern.cc.o.d"
  "CMakeFiles/rdfql_algebra.dir/algebra/pattern_printer.cc.o"
  "CMakeFiles/rdfql_algebra.dir/algebra/pattern_printer.cc.o.d"
  "CMakeFiles/rdfql_algebra.dir/algebra/result_io.cc.o"
  "CMakeFiles/rdfql_algebra.dir/algebra/result_io.cc.o.d"
  "librdfql_algebra.a"
  "librdfql_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
