
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/builtin.cc" "src/CMakeFiles/rdfql_algebra.dir/algebra/builtin.cc.o" "gcc" "src/CMakeFiles/rdfql_algebra.dir/algebra/builtin.cc.o.d"
  "/root/repo/src/algebra/mapping.cc" "src/CMakeFiles/rdfql_algebra.dir/algebra/mapping.cc.o" "gcc" "src/CMakeFiles/rdfql_algebra.dir/algebra/mapping.cc.o.d"
  "/root/repo/src/algebra/mapping_set.cc" "src/CMakeFiles/rdfql_algebra.dir/algebra/mapping_set.cc.o" "gcc" "src/CMakeFiles/rdfql_algebra.dir/algebra/mapping_set.cc.o.d"
  "/root/repo/src/algebra/pattern.cc" "src/CMakeFiles/rdfql_algebra.dir/algebra/pattern.cc.o" "gcc" "src/CMakeFiles/rdfql_algebra.dir/algebra/pattern.cc.o.d"
  "/root/repo/src/algebra/pattern_printer.cc" "src/CMakeFiles/rdfql_algebra.dir/algebra/pattern_printer.cc.o" "gcc" "src/CMakeFiles/rdfql_algebra.dir/algebra/pattern_printer.cc.o.d"
  "/root/repo/src/algebra/result_io.cc" "src/CMakeFiles/rdfql_algebra.dir/algebra/result_io.cc.o" "gcc" "src/CMakeFiles/rdfql_algebra.dir/algebra/result_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfql_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
