# Empty dependencies file for rdfql_algebra.
# This may be replaced when dependencies are built.
