# Empty compiler generated dependencies file for rdfql_optimize.
# This may be replaced when dependencies are built.
