file(REMOVE_RECURSE
  "librdfql_optimize.a"
)
