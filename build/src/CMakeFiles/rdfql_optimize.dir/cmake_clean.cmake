file(REMOVE_RECURSE
  "CMakeFiles/rdfql_optimize.dir/optimize/optimizer.cc.o"
  "CMakeFiles/rdfql_optimize.dir/optimize/optimizer.cc.o.d"
  "CMakeFiles/rdfql_optimize.dir/optimize/stats.cc.o"
  "CMakeFiles/rdfql_optimize.dir/optimize/stats.cc.o.d"
  "librdfql_optimize.a"
  "librdfql_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
