# Empty dependencies file for rdfql_core.
# This may be replaced when dependencies are built.
