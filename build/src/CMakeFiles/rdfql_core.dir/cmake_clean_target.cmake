file(REMOVE_RECURSE
  "librdfql_core.a"
)
