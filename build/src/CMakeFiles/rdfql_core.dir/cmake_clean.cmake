file(REMOVE_RECURSE
  "CMakeFiles/rdfql_core.dir/core/engine.cc.o"
  "CMakeFiles/rdfql_core.dir/core/engine.cc.o.d"
  "librdfql_core.a"
  "librdfql_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
