
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/rdfql_core.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/rdfql_core.dir/core/engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfql_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_construct.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_fo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_complexity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_optimize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_update.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
