file(REMOVE_RECURSE
  "CMakeFiles/rdfql_analysis.dir/analysis/containment.cc.o"
  "CMakeFiles/rdfql_analysis.dir/analysis/containment.cc.o.d"
  "CMakeFiles/rdfql_analysis.dir/analysis/fragments.cc.o"
  "CMakeFiles/rdfql_analysis.dir/analysis/fragments.cc.o.d"
  "CMakeFiles/rdfql_analysis.dir/analysis/monotonicity.cc.o"
  "CMakeFiles/rdfql_analysis.dir/analysis/monotonicity.cc.o.d"
  "CMakeFiles/rdfql_analysis.dir/analysis/well_designed.cc.o"
  "CMakeFiles/rdfql_analysis.dir/analysis/well_designed.cc.o.d"
  "librdfql_analysis.a"
  "librdfql_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
