file(REMOVE_RECURSE
  "librdfql_analysis.a"
)
