# Empty compiler generated dependencies file for rdfql_analysis.
# This may be replaced when dependencies are built.
