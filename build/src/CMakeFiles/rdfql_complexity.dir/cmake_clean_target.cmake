file(REMOVE_RECURSE
  "librdfql_complexity.a"
)
