file(REMOVE_RECURSE
  "CMakeFiles/rdfql_complexity.dir/complexity/cardinality.cc.o"
  "CMakeFiles/rdfql_complexity.dir/complexity/cardinality.cc.o.d"
  "CMakeFiles/rdfql_complexity.dir/complexity/cnf.cc.o"
  "CMakeFiles/rdfql_complexity.dir/complexity/cnf.cc.o.d"
  "CMakeFiles/rdfql_complexity.dir/complexity/coloring.cc.o"
  "CMakeFiles/rdfql_complexity.dir/complexity/coloring.cc.o.d"
  "CMakeFiles/rdfql_complexity.dir/complexity/combiner.cc.o"
  "CMakeFiles/rdfql_complexity.dir/complexity/combiner.cc.o.d"
  "CMakeFiles/rdfql_complexity.dir/complexity/hierarchy_reductions.cc.o"
  "CMakeFiles/rdfql_complexity.dir/complexity/hierarchy_reductions.cc.o.d"
  "CMakeFiles/rdfql_complexity.dir/complexity/qbf.cc.o"
  "CMakeFiles/rdfql_complexity.dir/complexity/qbf.cc.o.d"
  "CMakeFiles/rdfql_complexity.dir/complexity/sat_reduction.cc.o"
  "CMakeFiles/rdfql_complexity.dir/complexity/sat_reduction.cc.o.d"
  "CMakeFiles/rdfql_complexity.dir/complexity/sat_solver.cc.o"
  "CMakeFiles/rdfql_complexity.dir/complexity/sat_solver.cc.o.d"
  "librdfql_complexity.a"
  "librdfql_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
