
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/complexity/cardinality.cc" "src/CMakeFiles/rdfql_complexity.dir/complexity/cardinality.cc.o" "gcc" "src/CMakeFiles/rdfql_complexity.dir/complexity/cardinality.cc.o.d"
  "/root/repo/src/complexity/cnf.cc" "src/CMakeFiles/rdfql_complexity.dir/complexity/cnf.cc.o" "gcc" "src/CMakeFiles/rdfql_complexity.dir/complexity/cnf.cc.o.d"
  "/root/repo/src/complexity/coloring.cc" "src/CMakeFiles/rdfql_complexity.dir/complexity/coloring.cc.o" "gcc" "src/CMakeFiles/rdfql_complexity.dir/complexity/coloring.cc.o.d"
  "/root/repo/src/complexity/combiner.cc" "src/CMakeFiles/rdfql_complexity.dir/complexity/combiner.cc.o" "gcc" "src/CMakeFiles/rdfql_complexity.dir/complexity/combiner.cc.o.d"
  "/root/repo/src/complexity/hierarchy_reductions.cc" "src/CMakeFiles/rdfql_complexity.dir/complexity/hierarchy_reductions.cc.o" "gcc" "src/CMakeFiles/rdfql_complexity.dir/complexity/hierarchy_reductions.cc.o.d"
  "/root/repo/src/complexity/qbf.cc" "src/CMakeFiles/rdfql_complexity.dir/complexity/qbf.cc.o" "gcc" "src/CMakeFiles/rdfql_complexity.dir/complexity/qbf.cc.o.d"
  "/root/repo/src/complexity/sat_reduction.cc" "src/CMakeFiles/rdfql_complexity.dir/complexity/sat_reduction.cc.o" "gcc" "src/CMakeFiles/rdfql_complexity.dir/complexity/sat_reduction.cc.o.d"
  "/root/repo/src/complexity/sat_solver.cc" "src/CMakeFiles/rdfql_complexity.dir/complexity/sat_solver.cc.o" "gcc" "src/CMakeFiles/rdfql_complexity.dir/complexity/sat_solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfql_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
