# Empty compiler generated dependencies file for rdfql_complexity.
# This may be replaced when dependencies are built.
