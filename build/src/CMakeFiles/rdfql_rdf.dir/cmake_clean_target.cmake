file(REMOVE_RECURSE
  "librdfql_rdf.a"
)
