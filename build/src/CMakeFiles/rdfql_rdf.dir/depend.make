# Empty dependencies file for rdfql_rdf.
# This may be replaced when dependencies are built.
