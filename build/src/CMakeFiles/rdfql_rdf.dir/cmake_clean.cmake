file(REMOVE_RECURSE
  "CMakeFiles/rdfql_rdf.dir/rdf/dictionary.cc.o"
  "CMakeFiles/rdfql_rdf.dir/rdf/dictionary.cc.o.d"
  "CMakeFiles/rdfql_rdf.dir/rdf/dot.cc.o"
  "CMakeFiles/rdfql_rdf.dir/rdf/dot.cc.o.d"
  "CMakeFiles/rdfql_rdf.dir/rdf/graph.cc.o"
  "CMakeFiles/rdfql_rdf.dir/rdf/graph.cc.o.d"
  "CMakeFiles/rdfql_rdf.dir/rdf/ntriples.cc.o"
  "CMakeFiles/rdfql_rdf.dir/rdf/ntriples.cc.o.d"
  "CMakeFiles/rdfql_rdf.dir/rdf/static_graph.cc.o"
  "CMakeFiles/rdfql_rdf.dir/rdf/static_graph.cc.o.d"
  "librdfql_rdf.a"
  "librdfql_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
