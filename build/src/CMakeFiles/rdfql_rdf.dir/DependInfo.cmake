
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/dictionary.cc" "src/CMakeFiles/rdfql_rdf.dir/rdf/dictionary.cc.o" "gcc" "src/CMakeFiles/rdfql_rdf.dir/rdf/dictionary.cc.o.d"
  "/root/repo/src/rdf/dot.cc" "src/CMakeFiles/rdfql_rdf.dir/rdf/dot.cc.o" "gcc" "src/CMakeFiles/rdfql_rdf.dir/rdf/dot.cc.o.d"
  "/root/repo/src/rdf/graph.cc" "src/CMakeFiles/rdfql_rdf.dir/rdf/graph.cc.o" "gcc" "src/CMakeFiles/rdfql_rdf.dir/rdf/graph.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/CMakeFiles/rdfql_rdf.dir/rdf/ntriples.cc.o" "gcc" "src/CMakeFiles/rdfql_rdf.dir/rdf/ntriples.cc.o.d"
  "/root/repo/src/rdf/static_graph.cc" "src/CMakeFiles/rdfql_rdf.dir/rdf/static_graph.cc.o" "gcc" "src/CMakeFiles/rdfql_rdf.dir/rdf/static_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
