file(REMOVE_RECURSE
  "librdfql_parser.a"
)
