# Empty compiler generated dependencies file for rdfql_parser.
# This may be replaced when dependencies are built.
