file(REMOVE_RECURSE
  "CMakeFiles/rdfql_parser.dir/parser/lexer.cc.o"
  "CMakeFiles/rdfql_parser.dir/parser/lexer.cc.o.d"
  "CMakeFiles/rdfql_parser.dir/parser/parser.cc.o"
  "CMakeFiles/rdfql_parser.dir/parser/parser.cc.o.d"
  "librdfql_parser.a"
  "librdfql_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
