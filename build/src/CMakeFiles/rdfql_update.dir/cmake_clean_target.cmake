file(REMOVE_RECURSE
  "librdfql_update.a"
)
