file(REMOVE_RECURSE
  "CMakeFiles/rdfql_update.dir/update/update.cc.o"
  "CMakeFiles/rdfql_update.dir/update/update.cc.o.d"
  "librdfql_update.a"
  "librdfql_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
