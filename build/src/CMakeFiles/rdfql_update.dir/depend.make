# Empty dependencies file for rdfql_update.
# This may be replaced when dependencies are built.
