file(REMOVE_RECURSE
  "librdfql_util.a"
)
