# Empty dependencies file for rdfql_util.
# This may be replaced when dependencies are built.
