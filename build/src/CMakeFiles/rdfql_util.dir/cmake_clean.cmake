file(REMOVE_RECURSE
  "CMakeFiles/rdfql_util.dir/util/random.cc.o"
  "CMakeFiles/rdfql_util.dir/util/random.cc.o.d"
  "CMakeFiles/rdfql_util.dir/util/status.cc.o"
  "CMakeFiles/rdfql_util.dir/util/status.cc.o.d"
  "CMakeFiles/rdfql_util.dir/util/string_util.cc.o"
  "CMakeFiles/rdfql_util.dir/util/string_util.cc.o.d"
  "librdfql_util.a"
  "librdfql_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
