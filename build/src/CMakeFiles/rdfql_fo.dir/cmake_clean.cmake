file(REMOVE_RECURSE
  "CMakeFiles/rdfql_fo.dir/fo/fo_eval.cc.o"
  "CMakeFiles/rdfql_fo.dir/fo/fo_eval.cc.o.d"
  "CMakeFiles/rdfql_fo.dir/fo/formula.cc.o"
  "CMakeFiles/rdfql_fo.dir/fo/formula.cc.o.d"
  "CMakeFiles/rdfql_fo.dir/fo/interpolant_search.cc.o"
  "CMakeFiles/rdfql_fo.dir/fo/interpolant_search.cc.o.d"
  "CMakeFiles/rdfql_fo.dir/fo/sparql_to_fo.cc.o"
  "CMakeFiles/rdfql_fo.dir/fo/sparql_to_fo.cc.o.d"
  "CMakeFiles/rdfql_fo.dir/fo/structure.cc.o"
  "CMakeFiles/rdfql_fo.dir/fo/structure.cc.o.d"
  "CMakeFiles/rdfql_fo.dir/fo/ucq.cc.o"
  "CMakeFiles/rdfql_fo.dir/fo/ucq.cc.o.d"
  "CMakeFiles/rdfql_fo.dir/fo/ucq_to_sparql.cc.o"
  "CMakeFiles/rdfql_fo.dir/fo/ucq_to_sparql.cc.o.d"
  "librdfql_fo.a"
  "librdfql_fo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfql_fo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
