
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fo/fo_eval.cc" "src/CMakeFiles/rdfql_fo.dir/fo/fo_eval.cc.o" "gcc" "src/CMakeFiles/rdfql_fo.dir/fo/fo_eval.cc.o.d"
  "/root/repo/src/fo/formula.cc" "src/CMakeFiles/rdfql_fo.dir/fo/formula.cc.o" "gcc" "src/CMakeFiles/rdfql_fo.dir/fo/formula.cc.o.d"
  "/root/repo/src/fo/interpolant_search.cc" "src/CMakeFiles/rdfql_fo.dir/fo/interpolant_search.cc.o" "gcc" "src/CMakeFiles/rdfql_fo.dir/fo/interpolant_search.cc.o.d"
  "/root/repo/src/fo/sparql_to_fo.cc" "src/CMakeFiles/rdfql_fo.dir/fo/sparql_to_fo.cc.o" "gcc" "src/CMakeFiles/rdfql_fo.dir/fo/sparql_to_fo.cc.o.d"
  "/root/repo/src/fo/structure.cc" "src/CMakeFiles/rdfql_fo.dir/fo/structure.cc.o" "gcc" "src/CMakeFiles/rdfql_fo.dir/fo/structure.cc.o.d"
  "/root/repo/src/fo/ucq.cc" "src/CMakeFiles/rdfql_fo.dir/fo/ucq.cc.o" "gcc" "src/CMakeFiles/rdfql_fo.dir/fo/ucq.cc.o.d"
  "/root/repo/src/fo/ucq_to_sparql.cc" "src/CMakeFiles/rdfql_fo.dir/fo/ucq_to_sparql.cc.o" "gcc" "src/CMakeFiles/rdfql_fo.dir/fo/ucq_to_sparql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfql_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
