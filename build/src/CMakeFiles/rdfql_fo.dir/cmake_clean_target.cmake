file(REMOVE_RECURSE
  "librdfql_fo.a"
)
