# Empty dependencies file for rdfql_fo.
# This may be replaced when dependencies are built.
