# Empty dependencies file for union_normal_form_test.
# This may be replaced when dependencies are built.
