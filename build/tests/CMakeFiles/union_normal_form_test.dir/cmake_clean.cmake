file(REMOVE_RECURSE
  "CMakeFiles/union_normal_form_test.dir/union_normal_form_test.cc.o"
  "CMakeFiles/union_normal_form_test.dir/union_normal_form_test.cc.o.d"
  "union_normal_form_test"
  "union_normal_form_test.pdb"
  "union_normal_form_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_normal_form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
