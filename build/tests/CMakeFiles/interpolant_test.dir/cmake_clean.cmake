file(REMOVE_RECURSE
  "CMakeFiles/interpolant_test.dir/interpolant_test.cc.o"
  "CMakeFiles/interpolant_test.dir/interpolant_test.cc.o.d"
  "interpolant_test"
  "interpolant_test.pdb"
  "interpolant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpolant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
