# Empty compiler generated dependencies file for interpolant_test.
# This may be replaced when dependencies are built.
