file(REMOVE_RECURSE
  "CMakeFiles/expressiveness_test.dir/expressiveness_test.cc.o"
  "CMakeFiles/expressiveness_test.dir/expressiveness_test.cc.o.d"
  "expressiveness_test"
  "expressiveness_test.pdb"
  "expressiveness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expressiveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
