file(REMOVE_RECURSE
  "CMakeFiles/equivalences_test.dir/equivalences_test.cc.o"
  "CMakeFiles/equivalences_test.dir/equivalences_test.cc.o.d"
  "equivalences_test"
  "equivalences_test.pdb"
  "equivalences_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalences_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
