# Empty dependencies file for equivalences_test.
# This may be replaced when dependencies are built.
