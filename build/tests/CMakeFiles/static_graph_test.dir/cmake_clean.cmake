file(REMOVE_RECURSE
  "CMakeFiles/static_graph_test.dir/static_graph_test.cc.o"
  "CMakeFiles/static_graph_test.dir/static_graph_test.cc.o.d"
  "static_graph_test"
  "static_graph_test.pdb"
  "static_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
