# Empty compiler generated dependencies file for static_graph_test.
# This may be replaced when dependencies are built.
