# Empty dependencies file for university_test.
# This may be replaced when dependencies are built.
