file(REMOVE_RECURSE
  "CMakeFiles/ns_test.dir/ns_test.cc.o"
  "CMakeFiles/ns_test.dir/ns_test.cc.o.d"
  "ns_test"
  "ns_test.pdb"
  "ns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
