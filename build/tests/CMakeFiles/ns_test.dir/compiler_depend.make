# Empty compiler generated dependencies file for ns_test.
# This may be replaced when dependencies are built.
