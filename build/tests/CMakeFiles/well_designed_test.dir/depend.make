# Empty dependencies file for well_designed_test.
# This may be replaced when dependencies are built.
