file(REMOVE_RECURSE
  "CMakeFiles/well_designed_test.dir/well_designed_test.cc.o"
  "CMakeFiles/well_designed_test.dir/well_designed_test.cc.o.d"
  "well_designed_test"
  "well_designed_test.pdb"
  "well_designed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/well_designed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
