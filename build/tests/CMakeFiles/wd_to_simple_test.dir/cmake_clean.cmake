file(REMOVE_RECURSE
  "CMakeFiles/wd_to_simple_test.dir/wd_to_simple_test.cc.o"
  "CMakeFiles/wd_to_simple_test.dir/wd_to_simple_test.cc.o.d"
  "wd_to_simple_test"
  "wd_to_simple_test.pdb"
  "wd_to_simple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wd_to_simple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
