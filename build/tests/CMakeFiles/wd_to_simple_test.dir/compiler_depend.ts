# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for wd_to_simple_test.
