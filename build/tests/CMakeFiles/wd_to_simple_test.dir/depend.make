# Empty dependencies file for wd_to_simple_test.
# This may be replaced when dependencies are built.
