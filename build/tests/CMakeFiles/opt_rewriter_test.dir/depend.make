# Empty dependencies file for opt_rewriter_test.
# This may be replaced when dependencies are built.
