file(REMOVE_RECURSE
  "CMakeFiles/opt_rewriter_test.dir/opt_rewriter_test.cc.o"
  "CMakeFiles/opt_rewriter_test.dir/opt_rewriter_test.cc.o.d"
  "opt_rewriter_test"
  "opt_rewriter_test.pdb"
  "opt_rewriter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_rewriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
