file(REMOVE_RECURSE
  "CMakeFiles/transform_sweeps_test.dir/transform_sweeps_test.cc.o"
  "CMakeFiles/transform_sweeps_test.dir/transform_sweeps_test.cc.o.d"
  "transform_sweeps_test"
  "transform_sweeps_test.pdb"
  "transform_sweeps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_sweeps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
