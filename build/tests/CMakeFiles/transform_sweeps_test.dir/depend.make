# Empty dependencies file for transform_sweeps_test.
# This may be replaced when dependencies are built.
