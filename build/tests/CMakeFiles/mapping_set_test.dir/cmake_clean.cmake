file(REMOVE_RECURSE
  "CMakeFiles/mapping_set_test.dir/mapping_set_test.cc.o"
  "CMakeFiles/mapping_set_test.dir/mapping_set_test.cc.o.d"
  "mapping_set_test"
  "mapping_set_test.pdb"
  "mapping_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
