# Empty compiler generated dependencies file for mapping_set_test.
# This may be replaced when dependencies are built.
