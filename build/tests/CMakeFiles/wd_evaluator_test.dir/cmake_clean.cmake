file(REMOVE_RECURSE
  "CMakeFiles/wd_evaluator_test.dir/wd_evaluator_test.cc.o"
  "CMakeFiles/wd_evaluator_test.dir/wd_evaluator_test.cc.o.d"
  "wd_evaluator_test"
  "wd_evaluator_test.pdb"
  "wd_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wd_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
