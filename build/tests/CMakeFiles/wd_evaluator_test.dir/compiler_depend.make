# Empty compiler generated dependencies file for wd_evaluator_test.
# This may be replaced when dependencies are built.
