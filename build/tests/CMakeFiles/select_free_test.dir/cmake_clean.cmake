file(REMOVE_RECURSE
  "CMakeFiles/select_free_test.dir/select_free_test.cc.o"
  "CMakeFiles/select_free_test.dir/select_free_test.cc.o.d"
  "select_free_test"
  "select_free_test.pdb"
  "select_free_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_free_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
