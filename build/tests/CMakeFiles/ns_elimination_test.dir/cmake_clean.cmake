file(REMOVE_RECURSE
  "CMakeFiles/ns_elimination_test.dir/ns_elimination_test.cc.o"
  "CMakeFiles/ns_elimination_test.dir/ns_elimination_test.cc.o.d"
  "ns_elimination_test"
  "ns_elimination_test.pdb"
  "ns_elimination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_elimination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
