# Empty dependencies file for ns_elimination_test.
# This may be replaced when dependencies are built.
