# Empty compiler generated dependencies file for bench_eval_scaling.
# This may be replaced when dependencies are built.
