file(REMOVE_RECURSE
  "../bench/bench_eval_scaling"
  "../bench/bench_eval_scaling.pdb"
  "CMakeFiles/bench_eval_scaling.dir/bench_eval_scaling.cc.o"
  "CMakeFiles/bench_eval_scaling.dir/bench_eval_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eval_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
