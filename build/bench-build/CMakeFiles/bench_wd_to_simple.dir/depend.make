# Empty dependencies file for bench_wd_to_simple.
# This may be replaced when dependencies are built.
