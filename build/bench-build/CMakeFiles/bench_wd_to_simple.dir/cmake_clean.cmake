file(REMOVE_RECURSE
  "../bench/bench_wd_to_simple"
  "../bench/bench_wd_to_simple.pdb"
  "CMakeFiles/bench_wd_to_simple.dir/bench_wd_to_simple.cc.o"
  "CMakeFiles/bench_wd_to_simple.dir/bench_wd_to_simple.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wd_to_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
