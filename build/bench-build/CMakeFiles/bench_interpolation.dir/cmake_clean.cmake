file(REMOVE_RECURSE
  "../bench/bench_interpolation"
  "../bench/bench_interpolation.pdb"
  "CMakeFiles/bench_interpolation.dir/bench_interpolation.cc.o"
  "CMakeFiles/bench_interpolation.dir/bench_interpolation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
