file(REMOVE_RECURSE
  "../bench/bench_opt_vs_ns"
  "../bench/bench_opt_vs_ns.pdb"
  "CMakeFiles/bench_opt_vs_ns.dir/bench_opt_vs_ns.cc.o"
  "CMakeFiles/bench_opt_vs_ns.dir/bench_opt_vs_ns.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opt_vs_ns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
