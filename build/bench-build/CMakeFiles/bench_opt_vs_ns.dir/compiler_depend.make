# Empty compiler generated dependencies file for bench_opt_vs_ns.
# This may be replaced when dependencies are built.
