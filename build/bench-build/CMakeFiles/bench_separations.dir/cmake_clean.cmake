file(REMOVE_RECURSE
  "../bench/bench_separations"
  "../bench/bench_separations.pdb"
  "CMakeFiles/bench_separations.dir/bench_separations.cc.o"
  "CMakeFiles/bench_separations.dir/bench_separations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_separations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
