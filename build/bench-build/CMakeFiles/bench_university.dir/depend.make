# Empty dependencies file for bench_university.
# This may be replaced when dependencies are built.
