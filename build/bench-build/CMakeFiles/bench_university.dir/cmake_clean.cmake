file(REMOVE_RECURSE
  "../bench/bench_university"
  "../bench/bench_university.pdb"
  "CMakeFiles/bench_university.dir/bench_university.cc.o"
  "CMakeFiles/bench_university.dir/bench_university.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_university.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
