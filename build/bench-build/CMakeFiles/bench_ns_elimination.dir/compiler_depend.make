# Empty compiler generated dependencies file for bench_ns_elimination.
# This may be replaced when dependencies are built.
