file(REMOVE_RECURSE
  "../bench/bench_ns_elimination"
  "../bench/bench_ns_elimination.pdb"
  "CMakeFiles/bench_ns_elimination.dir/bench_ns_elimination.cc.o"
  "CMakeFiles/bench_ns_elimination.dir/bench_ns_elimination.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ns_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
