file(REMOVE_RECURSE
  "../bench/bench_ns_ablation"
  "../bench/bench_ns_ablation.pdb"
  "CMakeFiles/bench_ns_ablation.dir/bench_ns_ablation.cc.o"
  "CMakeFiles/bench_ns_ablation.dir/bench_ns_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ns_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
