# Empty compiler generated dependencies file for bench_ns_ablation.
# This may be replaced when dependencies are built.
