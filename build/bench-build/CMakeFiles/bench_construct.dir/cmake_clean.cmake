file(REMOVE_RECURSE
  "../bench/bench_construct"
  "../bench/bench_construct.pdb"
  "CMakeFiles/bench_construct.dir/bench_construct.cc.o"
  "CMakeFiles/bench_construct.dir/bench_construct.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_construct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
