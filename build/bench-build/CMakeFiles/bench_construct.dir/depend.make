# Empty dependencies file for bench_construct.
# This may be replaced when dependencies are built.
